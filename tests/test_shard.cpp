#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"

/// SMP-mode sharded engine: PE -> shard mapping properties, conservative
/// epoch synchronization, and the determinism contracts from the issue —
/// shards == 1 bit-identical to a plain sim::Engine, shards > 1 deterministic
/// given the shard count.

namespace {

using namespace cux;

// --------------------------------------------------------------------------
// PE -> shard mapping
// --------------------------------------------------------------------------

TEST(ShardMapping, BlockMappingIsMonotoneCompleteAndBalanced) {
  for (int pes : {1, 2, 3, 7, 8, 12, 16, 48}) {
    for (int shards = 1; shards <= pes; ++shards) {
      std::vector<int> count(static_cast<std::size_t>(shards), 0);
      int prev = 0;
      for (int pe = 0; pe < pes; ++pe) {
        const int s = sim::shardOfPe(pe, pes, shards);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, shards);
        ASSERT_GE(s, prev) << "mapping must be monotone (contiguous blocks)";
        prev = s;
        ++count[static_cast<std::size_t>(s)];
      }
      for (int s = 0; s < shards; ++s) {
        ASSERT_GE(count[static_cast<std::size_t>(s)], pes / shards) << "no starved shard";
        ASSERT_LE(count[static_cast<std::size_t>(s)], pes / shards + 1) << "balanced blocks";
      }
    }
  }
}

TEST(ShardMapping, AlignsWithNodeBoundariesWhenShardsDivideNodes) {
  // 4 nodes x 6 PEs, 2 shards: the shard boundary must fall between nodes.
  const int pes = 24, per_node = 6;
  for (int pe = 0; pe < pes; ++pe) {
    EXPECT_EQ(sim::shardOfPe(pe, pes, 2), pe / per_node < 2 ? 0 : 1);
  }
}

TEST(ShardMapping, PlanClampsDegenerateParameters) {
  sim::ShardPlan p;
  p.shards = 16;
  p.num_pes = 4;
  p.lookahead = 0;
  sim::ShardedEngine se(p);
  EXPECT_EQ(se.shards(), 4);            // no empty shards
  EXPECT_GE(se.plan().lookahead, 1u);   // lookahead floor
}

// --------------------------------------------------------------------------
// Plain-engine replica of the message storm (independent implementation used
// as the shards == 1 bit-identity oracle).
// --------------------------------------------------------------------------

struct ReplicaAcc {
  std::uint64_t hash = 1469598103934665603ULL;
  std::uint64_t deliveries = 0;
  sim::TimePoint last = 0;

  void record(sim::TimePoint t, int pe, std::uint32_t walker, int hop) {
    const auto mix = [this](std::uint64_t v) {
      hash ^= v;
      hash *= 1099511628211ULL;
    };
    mix(t);
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(pe)) << 32) | walker);
    mix(static_cast<std::uint64_t>(hop));
    ++deliveries;
    if (t > last) last = t;
  }
};

struct Replica {
  sim::Engine engine;
  int pes = 0;
  std::vector<sim::Duration> lat;
  ReplicaAcc acc;

  [[nodiscard]] sim::Duration latency(int a, int b) const {
    return lat[static_cast<std::size_t>(a) * static_cast<std::size_t>(pes) +
               static_cast<std::size_t>(b)];
  }

  void hop(int pe, std::uint64_t rng_state, std::uint32_t walker, int hops_left) {
    acc.record(engine.now(), pe, walker, hops_left);
    if (hops_left <= 0) return;
    sim::SplitMix64 rng(rng_state);
    const int dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(pes)));
    const std::uint64_t next_state = rng.next();
    engine.schedule(engine.now() + latency(pe, dst),
                    [this, dst, next_state, walker, hops_left] {
                      hop(dst, next_state, walker, hops_left - 1);
                    });
  }
};

sim::StormResult runReplica(int pes, const sim::StormConfig& cfg,
                            const std::function<sim::Duration(int, int)>& latency) {
  Replica r;
  r.pes = pes;
  r.lat.resize(static_cast<std::size_t>(pes) * static_cast<std::size_t>(pes));
  for (int a = 0; a < pes; ++a)
    for (int b = 0; b < pes; ++b)
      r.lat[static_cast<std::size_t>(a) * static_cast<std::size_t>(pes) +
            static_cast<std::size_t>(b)] = latency(a, b);
  for (int pe = 0; pe < pes; ++pe) {
    for (int w = 0; w < cfg.walkers_per_pe; ++w) {
      const auto walker = static_cast<std::uint32_t>(pe * cfg.walkers_per_pe + w);
      const auto t0 = static_cast<sim::TimePoint>(walker % 128);
      sim::SplitMix64 seeder(cfg.seed ^ (0x9E3779B97F4A7C15ULL * (walker + 1)));
      const std::uint64_t state = seeder.next();
      const int hops = cfg.hops;
      r.engine.schedule(t0, [&r, pe, state, walker, hops] { r.hop(pe, state, walker, hops); });
    }
  }
  r.engine.run();
  sim::StormResult out;
  out.hash = 1469598103934665603ULL;
  const auto mix = [&out](std::uint64_t v) {
    out.hash ^= v;
    out.hash *= 1099511628211ULL;
  };
  mix(r.acc.hash);
  mix(r.acc.deliveries);
  out.deliveries = r.acc.deliveries;
  out.last_delivery = r.acc.last;
  return out;
}

sim::Duration testLatency(int a, int b) {
  // Varied but always >= 50 ns so any lookahead <= 50 is safe.
  return 50 + 7 * static_cast<sim::Duration>((a * 13 + b * 31) % 6);
}

sim::ShardPlan testPlan(int shards, int pes) {
  sim::ShardPlan p;
  p.shards = shards;
  p.num_pes = pes;
  p.lookahead = 50;  // == min of testLatency
  return p;
}

// --------------------------------------------------------------------------
// Determinism contracts
// --------------------------------------------------------------------------

TEST(ShardedEngine, SingleShardStormIsBitIdenticalToPlainEngine) {
  const int pes = 8;
  sim::StormConfig cfg;
  cfg.walkers_per_pe = 3;
  cfg.hops = 24;
  sim::ShardedEngine se(testPlan(1, pes));
  const sim::StormResult sharded = sim::runMessageStorm(se, cfg, testLatency);
  const sim::StormResult plain = runReplica(pes, cfg, testLatency);
  EXPECT_EQ(sharded.hash, plain.hash);
  EXPECT_EQ(sharded.deliveries, plain.deliveries);
  EXPECT_EQ(sharded.last_delivery, plain.last_delivery);
  EXPECT_EQ(sharded.epochs, 0u) << "shards == 1 must not run the epoch protocol";
  EXPECT_EQ(sharded.cross_posts, 0u);
}

TEST(ShardedEngine, StormIsDeterministicForEveryShardCount) {
  const int pes = 8;
  sim::StormConfig cfg;
  cfg.walkers_per_pe = 2;
  cfg.hops = 20;
  for (int shards : {1, 2, 3, 4}) {
    auto once = [&] {
      sim::ShardedEngine se(testPlan(shards, pes));
      sim::StormResult r = sim::runMessageStorm(se, cfg, testLatency);
      EXPECT_EQ(se.pastClamped(), 0u) << "lookahead violated at shards=" << shards;
      EXPECT_TRUE(se.empty());
      return r;
    };
    const sim::StormResult a = once();
    const sim::StormResult b = once();
    EXPECT_EQ(a.hash, b.hash) << "shards=" << shards;
    EXPECT_EQ(a.deliveries, b.deliveries) << "shards=" << shards;
    EXPECT_EQ(a.last_delivery, b.last_delivery) << "shards=" << shards;
    EXPECT_EQ(a.epochs, b.epochs) << "shards=" << shards;
    EXPECT_EQ(a.cross_posts, b.cross_posts) << "shards=" << shards;
    if (shards > 1) {
      EXPECT_GT(a.epochs, 0u);
      EXPECT_GT(a.cross_posts, 0u) << "storm should exercise the mailboxes";
    }
  }
}

TEST(ShardedEngine, PhysicalResultsAreInvariantAcrossShardCounts) {
  // Walker trajectories and timestamps depend only on (seed, walker), never
  // on the partitioning; deliveries and the final virtual time must match
  // across shard counts (the timeline hash legitimately differs because the
  // per-shard accumulators interleave differently).
  const int pes = 12;
  sim::StormConfig cfg;
  cfg.walkers_per_pe = 2;
  cfg.hops = 15;
  sim::ShardedEngine base_se(testPlan(1, pes));
  const sim::StormResult base = sim::runMessageStorm(base_se, cfg, testLatency);
  EXPECT_EQ(base.deliveries,
            static_cast<std::uint64_t>(pes) * cfg.walkers_per_pe * (cfg.hops + 1));
  for (int shards : {2, 3, 4, 6}) {
    sim::ShardedEngine se(testPlan(shards, pes));
    const sim::StormResult r = sim::runMessageStorm(se, cfg, testLatency);
    EXPECT_EQ(r.deliveries, base.deliveries) << "shards=" << shards;
    EXPECT_EQ(r.last_delivery, base.last_delivery) << "shards=" << shards;
  }
}

TEST(ShardedEngine, DeliveryHookSeesEveryDeliveryWithoutChangingTheTimeline) {
  // The streaming-observability attachment point: on_delivery runs on the
  // delivering shard's thread after the accumulator records, so it must be
  // (a) complete — one call per delivery with the recorded arguments — and
  // (b) invisible — hash, timestamps and epoch counts identical to a run
  // without the hook.
  const int pes = 10;
  sim::StormConfig cfg;
  cfg.walkers_per_pe = 3;
  cfg.hops = 21;
  for (int shards : {1, 3}) {
    sim::ShardedEngine bare_se(testPlan(shards, pes));
    const sim::StormResult bare = sim::runMessageStorm(bare_se, cfg, testLatency);

    std::vector<std::uint64_t> per_shard(static_cast<std::size_t>(shards), 0);
    std::atomic<std::uint64_t> bad{0};
    sim::StormConfig hooked = cfg;
    hooked.on_delivery = [&](int shard, int pe, sim::TimePoint t, std::uint32_t walker,
                             int hops_left) {
      // Shard-thread affinity lets this write be plain (no lock): the hook
      // for shard s only ever runs on shard s's thread.
      ++per_shard[static_cast<std::size_t>(shard)];
      if (shard != sim::shardOfPe(pe, pes, shards) || t > bare.last_delivery ||
          walker >= static_cast<std::uint32_t>(pes * cfg.walkers_per_pe) ||
          hops_left < 0 || hops_left > cfg.hops) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
    };
    sim::ShardedEngine se(testPlan(shards, pes));
    const sim::StormResult observed = sim::runMessageStorm(se, hooked, testLatency);

    EXPECT_EQ(observed.hash, bare.hash) << "shards=" << shards;
    EXPECT_EQ(observed.deliveries, bare.deliveries) << "shards=" << shards;
    EXPECT_EQ(observed.last_delivery, bare.last_delivery) << "shards=" << shards;
    EXPECT_EQ(observed.epochs, bare.epochs) << "shards=" << shards;
    EXPECT_EQ(bad.load(), 0u) << "hook arguments out of contract at shards=" << shards;
    std::uint64_t total = 0;
    for (const std::uint64_t n : per_shard) total += n;
    EXPECT_EQ(total, bare.deliveries) << "shards=" << shards;
    if (shards > 1) {
      for (int s = 0; s < shards; ++s) {
        EXPECT_GT(per_shard[static_cast<std::size_t>(s)], 0u)
            << "shard " << s << " never delivered";
      }
    }
  }
}

// --------------------------------------------------------------------------
// Epoch-protocol edges: runUntil clock contract, stop, mailbox residue
// --------------------------------------------------------------------------

TEST(ShardedEngine, RunUntilAdvancesEveryShardClockToTarget) {
  const int pes = 8, shards = 4;
  sim::StormConfig cfg;
  cfg.walkers_per_pe = 2;
  cfg.hops = 30;
  sim::ShardedEngine se(testPlan(shards, pes));
  sim::ShardedEngine full_se(testPlan(shards, pes));
  const sim::StormResult full = sim::runMessageStorm(full_se, cfg, testLatency);

  // Replay the same storm but pause mid-flight: every shard clock must read
  // exactly the pause time (the conservative window never overshoots it).
  // runMessageStorm runs to completion, so drive the same walkers manually.
  const sim::TimePoint pause = full.last_delivery / 2;
  std::atomic<std::uint64_t> deliveries{0};  // incremented from every shard thread
  struct Ctx {
    sim::ShardedEngine* se;
    int pes;
    std::atomic<std::uint64_t>* deliveries;
    void hop(int pe, std::uint64_t rng_state, std::uint32_t walker, int hops_left) {
      deliveries->fetch_add(1, std::memory_order_relaxed);
      if (hops_left <= 0) return;
      sim::SplitMix64 rng(rng_state);
      const int dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(pes)));
      const std::uint64_t next_state = rng.next();
      const int shard = se->shardOfPe(pe);
      const sim::TimePoint at = se->engineOf(shard).now() + testLatency(pe, dst);
      se->post(shard, dst, at, [this, dst, next_state, walker, hops_left] {
        hop(dst, next_state, walker, hops_left - 1);
      });
    }
  } ctx{&se, pes, &deliveries};
  for (int pe = 0; pe < pes; ++pe) {
    for (int w = 0; w < cfg.walkers_per_pe; ++w) {
      const auto walker = static_cast<std::uint32_t>(pe * cfg.walkers_per_pe + w);
      const auto t0 = static_cast<sim::TimePoint>(walker % 128);
      sim::SplitMix64 seeder(cfg.seed ^ (0x9E3779B97F4A7C15ULL * (walker + 1)));
      const std::uint64_t state = seeder.next();
      const int hops = cfg.hops;
      se.scheduleOnPe(pe, t0, [&ctx, pe, state, walker, hops] {
        ctx.hop(pe, state, walker, hops);
      });
    }
  }
  EXPECT_FALSE(se.runUntil(pause)) << "work must remain at the pause point";
  for (int s = 0; s < shards; ++s) {
    EXPECT_EQ(se.engineOf(s).now(), pause) << "shard " << s << " clock off the epoch target";
  }
  se.run();
  EXPECT_TRUE(se.empty());
  EXPECT_EQ(deliveries, full.deliveries) << "pause/resume must lose no events";
  EXPECT_EQ(se.pastClamped(), 0u);
}

TEST(ShardedEngine, PendingStopStopsAtEpochBoundaryAndIsConsumedOnce) {
  const int pes = 6, shards = 3;
  sim::ShardedEngine se(testPlan(shards, pes));
  std::atomic<int> ran{0};  // events fire on different shard threads
  for (int pe = 0; pe < pes; ++pe) {
    se.scheduleOnPe(pe, 100 + static_cast<sim::TimePoint>(pe),
                    [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  se.stop();
  se.run();  // consumed before the first epoch: nothing may execute
  EXPECT_EQ(ran, 0);
  EXPECT_FALSE(se.empty());
  se.run();
  EXPECT_EQ(ran, pes);
  EXPECT_TRUE(se.empty());
}

TEST(ShardedEngine, EmptyRunTerminatesImmediately) {
  sim::ShardedEngine se(testPlan(4, 8));
  se.run();
  EXPECT_TRUE(se.empty());
  EXPECT_EQ(se.eventsProcessed(), 0u);
  EXPECT_TRUE(se.runUntil(1000));
  for (int s = 0; s < se.shards(); ++s) EXPECT_EQ(se.engineOf(s).now(), 1000u);
}

TEST(ShardedEngine, CrossShardPostsDrainInDeterministicOrder) {
  // Two source shards post equal-timestamp events into shard 0; execution
  // order must be (src_shard, seq) regardless of which thread posted first.
  // Run single-epoch by scheduling from the setup phase via engine events.
  const int pes = 3, shards = 3;
  sim::ShardPlan p = testPlan(shards, pes);
  std::vector<int> order;
  auto once = [&] {
    order.clear();
    sim::ShardedEngine se(p);
    // Each shard s != 0 posts two messages to PE 0 at the same virtual time.
    for (int s = 1; s < shards; ++s) {
      se.scheduleOnPe(s, 10, [&se, &order, s] {
        for (int k = 0; k < 2; ++k) {
          se.post(s, 0, 100, [&order, s, k] { order.push_back(s * 10 + k); });
        }
      });
    }
    se.run();
    return order;
  };
  const std::vector<int> a = once();
  const std::vector<int> b = once();
  EXPECT_EQ(a, (std::vector<int>{10, 11, 20, 21}));
  EXPECT_EQ(a, b);
}

}  // namespace
