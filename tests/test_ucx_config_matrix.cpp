#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "sim/rng.hpp"
#include "ucx/context.hpp"

/// Protocol-knob fuzzing: data integrity must hold for ANY combination of
/// eager thresholds, pipeline chunk sizes and GDRCopy availability — the
/// protocol-selection boundaries are where real transports break.

namespace {

using namespace cux;

struct KnobParam {
  std::size_t host_eager;
  std::size_t device_eager;
  std::size_t chunk;
  bool gdrcopy;
};

class UcxKnobMatrix : public ::testing::TestWithParam<KnobParam> {};

TEST_P(UcxKnobMatrix, IntegrityAcrossAllProtocolBoundaries) {
  const auto p = GetParam();
  model::Model m = model::summit(2);
  m.ucx.host_eager_threshold = p.host_eager;
  m.ucx.device_eager_threshold = p.device_eager;
  m.ucx.rndv_pipeline_chunk = p.chunk;
  m.ucx.gdrcopy_enabled = p.gdrcopy;
  hw::System sys(m.machine);
  ucx::Context ctx(sys, m.ucx);

  sim::SplitMix64 rng(0xF00D);
  // Sizes straddling every configured boundary, plus random ones.
  std::vector<std::size_t> sizes{1, p.device_eager, p.device_eager + 1, p.host_eager,
                                 p.host_eager + 1, p.chunk - 1, p.chunk, p.chunk + 1,
                                 3 * p.chunk + 17};
  for (int i = 0; i < 4; ++i) sizes.push_back(1 + rng.below(2u << 20));

  int tag = 100;
  for (std::size_t n : sizes) {
    if (n == 0) continue;
    for (const bool dev_src : {false, true}) {
      for (const bool dev_dst : {false, true}) {
        for (const int dst_pe : {1, 6}) {
          std::vector<std::byte> ref(n);
          rng.fill(ref.data(), n);
          void* src;
          void* dst;
          std::vector<std::byte> hsrc, hdst;
          if (dev_src) {
            src = cuda::deviceAlloc(sys, 0, n, true);
          } else {
            hsrc.resize(n);
            src = hsrc.data();
          }
          std::memcpy(src, ref.data(), n);
          if (dev_dst) {
            dst = cuda::deviceAlloc(sys, dst_pe, n, true);
          } else {
            hdst.resize(n);
            dst = hdst.data();
          }
          bool done = false;
          ctx.worker(dst_pe).tagRecv(dst, n, static_cast<ucx::Tag>(tag), ucx::kFullMask,
                                     [&](ucx::Request&) { done = true; });
          ctx.tagSend(0, dst_pe, src, n, static_cast<ucx::Tag>(tag), {});
          sys.engine.run();
          ASSERT_TRUE(done) << "n=" << n << " dev_src=" << dev_src << " dev_dst=" << dev_dst;
          ASSERT_EQ(std::memcmp(dst, ref.data(), n), 0)
              << "n=" << n << " dev_src=" << dev_src << " dev_dst=" << dev_dst
              << " dst_pe=" << dst_pe;
          if (dev_src) cuda::deviceFree(sys, src);
          if (dev_dst) cuda::deviceFree(sys, dst);
          ++tag;
        }
      }
    }
  }
}

// UcxConfig::validate() (called from the Context constructor) must reject
// configurations that would hang or misbehave silently instead of letting
// them produce wrong timings: a zero pipeline chunk spins the chunked
// rendezvous forever, negative overheads schedule events into the past, and
// a degenerate retry setup either never retries or overflows the backoff.
TEST(UcxConfigValidate, RejectsDegenerateConfigurations) {
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  auto construct = [&](auto mutate) {
    ucx::UcxConfig cfg = m.ucx;
    mutate(cfg);
    ucx::Context ctx(sys, cfg);
  };
  EXPECT_NO_THROW(construct([](ucx::UcxConfig&) {}));
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.rndv_pipeline_chunk = 0; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.send_overhead_us = -0.1; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.recv_overhead_us = -1.0; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.rndv_handshake_us = -0.5; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.rndv_pipeline_overhead_us = -4.0; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.host_rndv_chunk_overhead_us = -1.0; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.gdr_latency_us = -0.6; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.gdr_bandwidth_gbps = 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.cuda_stage_latency_us = -6.0; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.max_retries = -1; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.max_retries = 63; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.retry_base_us = 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.retry_base_us = -50.0; }),
               std::invalid_argument);
  // The backoff product must be rejected too, not just the shift bound: the
  // default 50 us base (50,000 ns) wraps uint64 from attempt 48 onwards,
  // which would produce a bogus tiny retry deadline, not UB.
  EXPECT_THROW(construct([](ucx::UcxConfig& c) { c.max_retries = 48; }),
               std::invalid_argument);
  EXPECT_THROW(construct([](ucx::UcxConfig& c) {
                 c.max_retries = 40;
                 c.retry_base_us = 1e7;  // 10 s base: overflows well before 62
               }),
               std::invalid_argument);
  // Boundary values that must be accepted.
  EXPECT_NO_THROW(construct([](ucx::UcxConfig& c) { c.max_retries = 0; }));
  EXPECT_NO_THROW(construct([](ucx::UcxConfig& c) { c.max_retries = 47; }));
  EXPECT_NO_THROW(construct([](ucx::UcxConfig& c) {
    c.max_retries = 62;       // the shift bound itself is fine...
    c.retry_base_us = 0.001;  // ...with a base small enough not to wrap
  }));
  EXPECT_NO_THROW(construct([](ucx::UcxConfig& c) { c.send_overhead_us = 0.0; }));
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, UcxKnobMatrix,
    ::testing::Values(KnobParam{8192, 4096, 256 * 1024, true},     // defaults
                      KnobParam{1, 1, 64 * 1024, true},            // everything rendezvous
                      KnobParam{1u << 21, 1u << 21, 128 * 1024, true},  // everything eager
                      KnobParam{8192, 4096, 256 * 1024, false},    // no GDRCopy
                      KnobParam{1024, 65536, 32 * 1024, false},    // inverted thresholds
                      KnobParam{8192, 4096, 1u << 22, true}),      // chunk > message
    [](const ::testing::TestParamInfo<KnobParam>& info) {
      const auto& p = info.param;
      return "he" + std::to_string(p.host_eager) + "_de" + std::to_string(p.device_eager) +
             "_ch" + std::to_string(p.chunk) + (p.gdrcopy ? "_gdr" : "_nogdr");
    });

}  // namespace
