#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "sim/shard.hpp"

/// Bounded-memory streaming observability (ROADMAP item 4): a message storm
/// at >= 10x the collector's default span capacity must run with collector
/// memory independent of the message count, the storm timeline must be
/// bit-identical with the observation hook on or off, and the windowed
/// aggregates must merge to the same result for every shard count.

// --------------------------------------------------------------------------
// Live-byte heap accounting. Every allocation is prefixed with a 16-byte
// header holding its size, so operator delete can subtract exactly what
// operator new added. Atomics, because the sharded storm allocates from
// every shard thread. (Alloc *counts* would be the wrong metric here: the
// open-span index legitimately allocates one hash node per begin and frees
// it at retirement — bounded live memory is the contract, not zero mallocs.)
// --------------------------------------------------------------------------

static std::atomic<std::uint64_t> g_live{0};
static std::atomic<std::uint64_t> g_peak{0};

namespace {
constexpr std::size_t kHeader = 16;  // preserves max_align_t alignment

void* trackedAlloc(std::size_t n) {
  void* raw = std::malloc(n + kHeader);
  if (raw == nullptr) throw std::bad_alloc();
  *static_cast<std::uint64_t*>(raw) = n;
  const std::uint64_t live = g_live.fetch_add(n, std::memory_order_relaxed) + n;
  std::uint64_t peak = g_peak.load(std::memory_order_relaxed);
  while (peak < live &&
         !g_peak.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
  return static_cast<char*>(raw) + kHeader;
}

void trackedFree(void* p) noexcept {
  if (p == nullptr) return;
  char* raw = static_cast<char*>(p) - kHeader;
  g_live.fetch_sub(*reinterpret_cast<std::uint64_t*>(raw), std::memory_order_relaxed);
  std::free(raw);
}
}  // namespace

void* operator new(std::size_t n) { return trackedAlloc(n); }
void* operator new[](std::size_t n) { return trackedAlloc(n); }
void operator delete(void* p) noexcept { trackedFree(p); }
void operator delete[](void* p) noexcept { trackedFree(p); }
void operator delete(void* p, std::size_t) noexcept { trackedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { trackedFree(p); }

namespace {

using namespace cux;

// Same latency shape as test_shard.cpp: varied but >= 50 ns, so a 50 ns
// lookahead is safe at any shard count.
sim::Duration stormLatency(int a, int b) {
  return 50 + 7 * static_cast<sim::Duration>((a * 13 + b * 31) % 6);
}

sim::ShardPlan stormPlan(int shards, int pes) {
  sim::ShardPlan p;
  p.shards = shards;
  p.num_pes = pes;
  p.lookahead = 50;
  return p;
}

/// One streaming span per delivery, recorded entirely on the delivering
/// shard's thread (the storm contract: on_delivery runs on that shard's
/// thread, so per-shard collectors need no locks).
void attachSpanHook(sim::StormConfig& cfg, std::vector<obs::SpanCollector>& cols) {
  cfg.on_delivery = [&cols](int shard, int pe, sim::TimePoint t, std::uint32_t walker,
                            int hops_left) {
    obs::SpanCollector& c = cols[static_cast<std::size_t>(shard)];
    const std::uint64_t id = c.begin(t, pe, pe, walker, "storm.hop");
    c.phase(id, t, obs::Phase::MatchedPosted, pe, static_cast<std::uint64_t>(hops_left));
    c.end(id, t, obs::Phase::Completed, pe);
  };
}

// --------------------------------------------------------------------------
// Bounded memory at 10x the default span capacity (the acceptance bar:
// >= 40960 deliveries vs the collector's default 4096-span reservation).
// --------------------------------------------------------------------------

constexpr int kPes = 16;
constexpr int kWalkers = 16;
constexpr int kHops = 159;
constexpr std::uint64_t kDeliveries =
    static_cast<std::uint64_t>(kPes) * kWalkers * (kHops + 1);
static_assert(kDeliveries >= 10 * 4096, "storm must be >= 10x the default span capacity");

struct StormRun {
  sim::StormResult result;
  std::int64_t live_growth = 0;  ///< bytes still allocated after the run
  std::int64_t peak_growth = 0;  ///< peak bytes above the pre-run level
  std::uint64_t begun = 0;
  std::uint64_t retired = 0;
  std::uint64_t open = 0;
  std::uint64_t open_hwm = 0;
  std::uint64_t dropped = 0;
};

StormRun runTenXStorm(bool streaming) {
  sim::ShardedEngine se(stormPlan(4, kPes));
  std::vector<obs::SpanCollector> cols(static_cast<std::size_t>(se.shards()));
  sim::StormConfig cfg;
  cfg.walkers_per_pe = kWalkers;
  cfg.hops = kHops;
  attachSpanHook(cfg, cols);

  // Snapshot before enable(): the collectors' up-front reservations are part
  // of their footprint (retained mode pre-reserves O(default span count)).
  const std::uint64_t before = g_live.load(std::memory_order_relaxed);
  g_peak.store(before, std::memory_order_relaxed);
  for (obs::SpanCollector& c : cols) {
    if (streaming) {
      c.enableStreaming({}, nullptr);
    } else {
      c.enable();
    }
  }
  StormRun out;
  out.result = sim::runMessageStorm(se, cfg, stormLatency);
  out.live_growth = static_cast<std::int64_t>(g_live.load(std::memory_order_relaxed)) -
                    static_cast<std::int64_t>(before);
  out.peak_growth = static_cast<std::int64_t>(g_peak.load(std::memory_order_relaxed)) -
                    static_cast<std::int64_t>(before);
  for (const obs::SpanCollector& c : cols) {
    out.begun += c.begun();
    out.retired += c.retired();
    out.open += c.openCount();
    out.open_hwm = std::max(out.open_hwm, c.openHighWatermark());
    out.dropped += c.droppedEvents();
  }
  return out;
}

TEST(StreamObs, TenXStormStaysBoundedWhileRetainedModeGrows) {
  const StormRun streaming = runTenXStorm(/*streaming=*/true);
  const StormRun retained = runTenXStorm(/*streaming=*/false);

  ASSERT_EQ(streaming.result.deliveries, kDeliveries);
  EXPECT_EQ(streaming.begun, kDeliveries);
  EXPECT_EQ(streaming.retired, kDeliveries) << "every span must retire through streaming";
  EXPECT_EQ(streaming.open, 0u);
  EXPECT_LE(streaming.open_hwm, 1u) << "hook spans close in the same callback";
  EXPECT_EQ(streaming.dropped, 0u);
  EXPECT_EQ(retained.begun, kDeliveries);

  // The acceptance bound: streaming collector memory is O(open spans +
  // windows), not O(deliveries). 1 MiB is ~25 B/span of headroom; the real
  // footprint (slot pool + a handful of windows) is far below it.
  EXPECT_LT(streaming.live_growth, std::int64_t{1} << 20)
      << "streaming collectors retained per-message memory";
  EXPECT_LT(streaming.peak_growth, std::int64_t{2} << 20)
      << "streaming collectors ballooned mid-run";

  // Retained mode keeps every span + 3 events (~150 B/span): the growth gap
  // is what the streaming mode exists to remove.
  EXPECT_GT(retained.live_growth, std::int64_t{4} << 20);
  EXPECT_GT(retained.live_growth, 4 * std::max<std::int64_t>(streaming.live_growth, 1));
}

// --------------------------------------------------------------------------
// Trace invisibility: the hook and the streaming collectors change nothing
// about the storm timeline.
// --------------------------------------------------------------------------

TEST(StreamObs, HookAndStreamingCollectorsLeaveStormTimelineUntouched) {
  const int pes = 8;
  sim::StormConfig cfg;
  cfg.walkers_per_pe = 3;
  cfg.hops = 24;

  sim::ShardedEngine bare_se(stormPlan(3, pes));
  const sim::StormResult bare = sim::runMessageStorm(bare_se, cfg, stormLatency);

  sim::ShardedEngine obs_se(stormPlan(3, pes));
  std::vector<obs::SpanCollector> cols(static_cast<std::size_t>(obs_se.shards()));
  for (obs::SpanCollector& c : cols) c.enableStreaming({}, nullptr);
  attachSpanHook(cfg, cols);
  const sim::StormResult observed = sim::runMessageStorm(obs_se, cfg, stormLatency);

  EXPECT_EQ(observed.hash, bare.hash);
  EXPECT_EQ(observed.deliveries, bare.deliveries);
  EXPECT_EQ(observed.last_delivery, bare.last_delivery);
  EXPECT_EQ(observed.epochs, bare.epochs);
  EXPECT_EQ(observed.cross_posts, bare.cross_posts);
  std::uint64_t retired = 0;
  for (const obs::SpanCollector& c : cols) retired += c.retired();
  EXPECT_EQ(retired, bare.deliveries) << "the hook must still observe every delivery";
}

// --------------------------------------------------------------------------
// Window-merge determinism: per-shard aggregates merged in shard-index order
// reduce to the same windows — exemplars included — for every shard count.
// --------------------------------------------------------------------------

TEST(StreamObs, MergedWindowsAreInvariantAcrossShardCounts) {
  const int pes = 12;
  const std::uint64_t deliveries = 12ull * 4 * 64;
  auto windowsJson = [&](int shards) {
    sim::ShardedEngine se(stormPlan(shards, pes));
    std::vector<obs::SpanCollector> cols(static_cast<std::size_t>(se.shards()));
    for (obs::SpanCollector& c : cols) c.enableStreaming({}, nullptr);
    sim::StormConfig cfg;
    cfg.walkers_per_pe = 4;
    cfg.hops = 63;
    attachSpanHook(cfg, cols);
    const sim::StormResult r = sim::runMessageStorm(se, cfg, stormLatency);
    EXPECT_EQ(r.deliveries, deliveries) << "shards=" << shards;

    obs::SpanCollector merged;
    merged.enableStreaming({}, nullptr);
    for (const obs::SpanCollector& c : cols) merged.mergeFrom(c);
    EXPECT_EQ(merged.retired(), deliveries) << "shards=" << shards;
    std::ostringstream os;
    merged.windows().dumpJson(os);
    return os.str();
  };

  const std::string base = windowsJson(1);
  ASSERT_NE(base.find("storm.hop"), std::string::npos);
  for (int shards : {2, 3, 4}) {
    EXPECT_EQ(windowsJson(shards), base) << "shards=" << shards;
  }
}

// --------------------------------------------------------------------------
// Steady state: once the slot pool and the window are faulted in, span
// lifecycles hold live heap memory flat (node churn in the open-span index
// is alloc/free balanced; slots and event capacity recycle).
// --------------------------------------------------------------------------

TEST(StreamObs, SteadyStateRetirementHoldsLiveMemoryFlat) {
  obs::NullSink sink;
  obs::SpanCollector sc;
  obs::StreamConfig cfg;
  cfg.window_ns = sim::Duration{1} << 30;  // everything lands in window 0
  sc.enableStreaming(cfg, &sink);

  auto spanAt = [&sc](sim::TimePoint t) {
    const std::uint64_t id = sc.begin(t, 0, 1, 4096, "steady");
    sc.phase(id, t + 1, obs::Phase::RecvPosted, 1);
    sc.end(id, t + 2, obs::Phase::Completed, 1);
  };
  for (sim::TimePoint t = 100; t < 164; ++t) spanAt(t);  // fault pool + exemplars in

  const std::int64_t before = static_cast<std::int64_t>(g_live.load(std::memory_order_relaxed));
  for (sim::TimePoint t = 1000; t < 11000; ++t) spanAt(t);
  const std::int64_t growth =
      static_cast<std::int64_t>(g_live.load(std::memory_order_relaxed)) - before;

  EXPECT_LE(growth, 4096) << "steady-state retirement must not accumulate memory";
  EXPECT_EQ(sc.retired(), 64u + 10000u);
  EXPECT_EQ(sink.spans(), 64u + 10000u);
  EXPECT_EQ(sc.openCount(), 0u);
  EXPECT_EQ(sc.openHighWatermark(), 1u);
  ASSERT_EQ(sc.windows().size(), 1u) << "one kind x one size class x one window";

  sc.flushWindows();
  EXPECT_EQ(sink.windows(), 1u);
}

// --------------------------------------------------------------------------
// Fidelity-loss accounting: records that arrive after retirement are
// counted, never stored.
// --------------------------------------------------------------------------

TEST(StreamObs, LateRecordsAfterRetirementAreCountedNotStored) {
  obs::SpanCollector sc;
  sc.enableStreaming({}, nullptr);
  const std::uint64_t id = sc.begin(10, 0, 1, 64, "late");
  sc.end(id, 20, obs::Phase::Completed, 1);
  EXPECT_EQ(sc.retired(), 1u);

  sc.phase(id, 30, obs::Phase::RndvAts, 0);  // span is gone
  EXPECT_EQ(sc.droppedEvents(), 1u);
  sc.end(id, 40, obs::Phase::Errored, 0);  // second close
  EXPECT_EQ(sc.doubleCloses(), 1u);
  EXPECT_EQ(sc.terminalCount(obs::Phase::Completed), 1u);
  EXPECT_EQ(sc.terminalCount(obs::Phase::Errored), 0u);
}

}  // namespace
