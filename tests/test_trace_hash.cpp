#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "converse/converse.hpp"
#include "core/device_comm.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "obs/sink.hpp"
#include "sim/rng.hpp"
#include "ucx/context.hpp"

/// Trace-hash determinism: the engine's contract is that identical
/// configurations produce bit-identical event orderings. These tests pin
/// that down with an order-sensitive hash over the full trace timeline —
/// any reordering of equal-timestamp events (e.g. a broken FIFO tie-break
/// after an engine change) flips the hash.

namespace {

using namespace cux;

TEST(TraceHash, OrderSensitive) {
  sim::Tracer a, b;
  a.enable();
  b.enable();
  a.record(10, sim::TraceCat::UcxSend, 0, 1, 64, 7, "x");
  a.record(10, sim::TraceCat::UcxRecv, 1, 0, 64, 7, "y");
  b.record(10, sim::TraceCat::UcxRecv, 1, 0, 64, 7, "y");
  b.record(10, sim::TraceCat::UcxSend, 0, 1, 64, 7, "x");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), sim::Tracer{}.hash());
}

/// Span-collector configuration under test: off, retained vectors, or the
/// bounded-memory streaming mode (windowed aggregation through a sink).
enum class ObsMode { Off, Retained, Streaming };

std::uint64_t mixedUcxTrafficHash(const sim::FaultConfig& fault = {},
                                  ucx::MatcherImpl matcher = ucx::MatcherImpl::Bucketed,
                                  bool pooling = true, ObsMode obs = ObsMode::Off) {
  model::Model m = model::summit(2);
  m.ucx.matcher = matcher;
  m.ucx.pooling = pooling;
  m.machine.fault = fault;
  obs::NullSink sink;
  hw::System sys(m.machine);
  sys.trace.enable();
  if (obs == ObsMode::Retained) sys.obs.spans.enable();
  if (obs == ObsMode::Streaming) sys.obs.spans.enableStreaming({}, &sink);
  ucx::Context ctx(sys, m.ucx);
  sim::SplitMix64 rng(42);

  // Host and device, eager and rendezvous, intra- and inter-node, posted
  // receives and unexpected arrivals, plus owned-payload active messages.
  std::vector<std::vector<std::byte>> host_bufs;
  std::vector<cuda::DeviceBuffer> dev_bufs;
  const std::uint64_t sizes[] = {64, 4096, 16384, 512 * 1024};
  int pair = 0;
  for (std::uint64_t size : sizes) {
    for (int dst_pe : {1, 6}) {  // same node / other node
      const auto tag = static_cast<ucx::Tag>(0x100 + pair++);
      host_bufs.emplace_back(size);
      host_bufs.emplace_back(size);
      auto& src = host_bufs[host_bufs.size() - 2];
      auto& dst = host_bufs.back();
      rng.fill(src.data(), src.size());
      if (rng.below(2) == 0) {  // half posted-first, half unexpected
        ctx.worker(dst_pe).tagRecv(dst.data(), size, tag, ucx::kFullMask, {});
        ctx.tagSend(0, dst_pe, src.data(), size, tag, {});
      } else {
        ctx.tagSend(0, dst_pe, src.data(), size, tag, {});
        ctx.worker(dst_pe).tagRecv(dst.data(), size, tag, ucx::kFullMask, {});
      }
      dev_bufs.emplace_back(sys, 0, size);
      dev_bufs.emplace_back(sys, dst_pe, size);
      auto& dsrc = dev_bufs[dev_bufs.size() - 2];
      auto& ddst = dev_bufs.back();
      const auto dtag = static_cast<ucx::Tag>(0x200 + pair);
      ctx.worker(dst_pe).tagRecv(ddst.get(), size, dtag, ucx::kFullMask, {});
      ctx.tagSend(0, dst_pe, dsrc.get(), size, dtag, {});
    }
  }
  ctx.worker(7).setHandler(0x9, ucx::kFullMask, [](ucx::Delivery) {});
  for (std::uint64_t size : {256u, 65536u}) {
    std::vector<std::byte> payload(size);
    rng.fill(payload.data(), payload.size());
    ctx.amSend(2, 7, 0x9, std::move(payload), {});
  }
  sys.engine.run();
  return sys.trace.hash();
}

TEST(TraceHash, MixedUcxTrafficBitIdenticalAcrossRuns) {
  const auto h1 = mixedUcxTrafficHash();
  const auto h2 = mixedUcxTrafficHash();
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, sim::Tracer{}.hash());  // the workload actually traced something
}

std::uint64_t deviceCommHash(bool smp, const sim::FaultConfig& fault = {},
                             ucx::MatcherImpl matcher = ucx::MatcherImpl::Bucketed,
                             ObsMode obs = ObsMode::Off) {
  model::Model m = model::summit(2);
  m.ucx.matcher = matcher;
  m.costs.smp_comm_thread = smp;
  m.machine.fault = fault;
  obs::NullSink sink;
  hw::System sys(m.machine);
  sys.trace.enable();
  if (obs == ObsMode::Retained) sys.obs.spans.enable();
  if (obs == ObsMode::Streaming) sys.obs.spans.enableStreaming({}, &sink);
  ucx::Context ctx(sys, m.ucx);
  cmi::Converse cmi(sys, ctx, m.costs);
  core::DeviceComm dev(cmi);
  std::vector<std::unique_ptr<cuda::DeviceBuffer>> bufs;
  for (int i = 0; i < 8; ++i) {
    bufs.push_back(std::make_unique<cuda::DeviceBuffer>(sys, 0, 8192));
    bufs.push_back(std::make_unique<cuda::DeviceBuffer>(sys, 6, 8192));
    auto* src = bufs[bufs.size() - 2].get();
    auto* dst = bufs.back().get();
    cmi.runOn(0, [&dev, &cmi, src, dst, i] {
      core::CmiDeviceBuffer buf{src->get(), 8192, 0};
      dev.lrtsSendDevice(0, 6, buf);
      const auto device_tag = buf.tag;
      if (i % 2 == 0) {
        core::CmiDeviceBuffer ubuf{src->get(), 8192, 0};
        dev.lrtsSendDeviceUserTag(0, 6, ubuf, static_cast<std::uint64_t>(i));
        dev.lrtsRecvDeviceUserTag(6, dst->get(), 8192, static_cast<std::uint64_t>(i),
                                  core::DeviceRecvType::Raw, {});
      }
      cmi.runOn(6, [&dev, dst, device_tag] {
        dev.lrtsRecvDevice(6, core::DeviceRdmaOp{dst->get(), 8192, device_tag},
                           core::DeviceRecvType::Raw, {});
      });
    });
  }
  sys.engine.run();
  return sys.trace.hash();
}

TEST(TraceHash, DeviceCommBitIdenticalAcrossRuns) {
  EXPECT_EQ(deviceCommHash(false), deviceCommHash(false));
  EXPECT_EQ(deviceCommHash(true), deviceCommHash(true));
  // SMP routing really changes the timeline (comm-thread serialisation).
  EXPECT_NE(deviceCommHash(false), deviceCommHash(true));
}

// The bucketed matcher's contract: on fault-free traces it is bit-identical
// to the reference linear matcher — same matches, same timestamps, same
// event order — for the full protocol mix (eager/rendezvous, host/device,
// posted/unexpected, active messages) and for the machine-layer device path.
// Pooling must likewise be timing-invisible: it recycles storage, never
// changes behaviour.
TEST(TraceHash, BucketedMatcherBitIdenticalToLinearReference) {
  EXPECT_EQ(mixedUcxTrafficHash({}, ucx::MatcherImpl::Bucketed),
            mixedUcxTrafficHash({}, ucx::MatcherImpl::Linear));
  EXPECT_EQ(deviceCommHash(false, {}, ucx::MatcherImpl::Bucketed),
            deviceCommHash(false, {}, ucx::MatcherImpl::Linear));
  EXPECT_EQ(deviceCommHash(true, {}, ucx::MatcherImpl::Bucketed),
            deviceCommHash(true, {}, ucx::MatcherImpl::Linear));
}

TEST(TraceHash, PoolingIsTraceInvisible) {
  EXPECT_EQ(mixedUcxTrafficHash({}, ucx::MatcherImpl::Bucketed, true),
            mixedUcxTrafficHash({}, ucx::MatcherImpl::Bucketed, false));
}

// The determinism contract of the fault injector: while DISABLED it must be
// invisible — no random numbers consumed, no reliability branches taken, no
// sequence numbers assigned — so the trace hash is bit-identical to a
// configuration that never mentions faults at all. This holds even when drop
// probabilities and outage windows are configured but enabled == false.
TEST(TraceHash, DisabledInjectorIsBitIdenticalToNoInjector) {
  sim::FaultConfig configured_but_off;
  configured_but_off.enabled = false;
  configured_but_off.seed = 0xDEAD;
  configured_but_off.setAllClasses(sim::FaultPolicy{0.5, 25.0});
  configured_but_off.down_windows.push_back(sim::LinkDownWindow{0, sim::msec(1.0), -1, -1});

  EXPECT_EQ(mixedUcxTrafficHash(), mixedUcxTrafficHash(configured_but_off));
  EXPECT_EQ(deviceCommHash(false), deviceCommHash(false, configured_but_off));
  EXPECT_EQ(deviceCommHash(true), deviceCommHash(true, configured_but_off));
}

// The observability contract (mirroring the injector's): span collection
// writes only to its own buffers — it never touches sim::Tracer, schedules
// engine events, or consumes randomness — so enabling it leaves the trace
// hash bit-identical. This must hold on the clean timeline AND on a faulty
// one, where the Retry/Fallback/Errored span phases fire too.
TEST(TraceHash, ObservabilityIsTraceInvisible) {
  EXPECT_EQ(mixedUcxTrafficHash({}, ucx::MatcherImpl::Bucketed, true, ObsMode::Off),
            mixedUcxTrafficHash({}, ucx::MatcherImpl::Bucketed, true, ObsMode::Retained));
  EXPECT_EQ(deviceCommHash(false, {}, ucx::MatcherImpl::Bucketed, ObsMode::Off),
            deviceCommHash(false, {}, ucx::MatcherImpl::Bucketed, ObsMode::Retained));
  EXPECT_EQ(deviceCommHash(true, {}, ucx::MatcherImpl::Bucketed, ObsMode::Off),
            deviceCommHash(true, {}, ucx::MatcherImpl::Bucketed, ObsMode::Retained));
  const auto loss = sim::FaultConfig::uniformLoss(0.1, 3);
  EXPECT_EQ(mixedUcxTrafficHash(loss, ucx::MatcherImpl::Bucketed, true, ObsMode::Off),
            mixedUcxTrafficHash(loss, ucx::MatcherImpl::Bucketed, true, ObsMode::Retained));
  EXPECT_EQ(deviceCommHash(false, loss, ucx::MatcherImpl::Bucketed, ObsMode::Off),
            deviceCommHash(false, loss, ucx::MatcherImpl::Bucketed, ObsMode::Retained));
}

// The same contract for the bounded-memory mode: windowed aggregation and
// sink fan-out happen at retirement, on the observer's side of the fence —
// no events scheduled, no randomness consumed, hashes bit-identical to a run
// with observability off. Faulty timelines exercise the Retry/Fallback
// retirement paths too.
TEST(TraceHash, StreamingObservabilityIsTraceInvisible) {
  EXPECT_EQ(mixedUcxTrafficHash({}, ucx::MatcherImpl::Bucketed, true, ObsMode::Off),
            mixedUcxTrafficHash({}, ucx::MatcherImpl::Bucketed, true, ObsMode::Streaming));
  EXPECT_EQ(deviceCommHash(false, {}, ucx::MatcherImpl::Bucketed, ObsMode::Off),
            deviceCommHash(false, {}, ucx::MatcherImpl::Bucketed, ObsMode::Streaming));
  EXPECT_EQ(deviceCommHash(true, {}, ucx::MatcherImpl::Bucketed, ObsMode::Off),
            deviceCommHash(true, {}, ucx::MatcherImpl::Bucketed, ObsMode::Streaming));
  const auto loss = sim::FaultConfig::uniformLoss(0.1, 3);
  EXPECT_EQ(mixedUcxTrafficHash(loss, ucx::MatcherImpl::Bucketed, true, ObsMode::Off),
            mixedUcxTrafficHash(loss, ucx::MatcherImpl::Bucketed, true, ObsMode::Streaming));
  EXPECT_EQ(deviceCommHash(false, loss, ucx::MatcherImpl::Bucketed, ObsMode::Off),
            deviceCommHash(false, loss, ucx::MatcherImpl::Bucketed, ObsMode::Streaming));
}

// Enabled faults are themselves deterministic: a fixed seed reproduces the
// exact loss/retry/duplicate timeline; a different seed produces a
// different one (at 10% drop over this much traffic, collision of the two
// full timelines is implausible).
TEST(TraceHash, EnabledInjectorIsSeedDeterministic) {
  const auto faulty = [](std::uint64_t seed) {
    return mixedUcxTrafficHash(sim::FaultConfig::uniformLoss(0.1, seed));
  };
  EXPECT_EQ(faulty(1), faulty(1));
  EXPECT_NE(faulty(1), faulty(2));
  // ...and injecting faults really does alter the timeline.
  EXPECT_NE(faulty(1), mixedUcxTrafficHash());
}

}  // namespace
