#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "converse/converse.hpp"
#include "core/device_comm.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "sim/rng.hpp"
#include "ucx/am.hpp"

/// The paper's Sec. VI improvement proposals, implemented: GPU-capable
/// active messages and user-provided tags with pre-posted receives.

namespace {

using namespace cux;

struct Fix {
  explicit Fix(int nodes = 2) : m(model::summit(nodes)) {
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    cmi = std::make_unique<cmi::Converse>(*sys, *ctx, m.costs);
    dev = std::make_unique<core::DeviceComm>(*cmi);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<cmi::Converse> cmi;
  std::unique_ptr<core::DeviceComm> dev;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  sim::SplitMix64 rng(seed);
  rng.fill(v.data(), n);
  return v;
}

// --------------------------------------------------------------------------
// Active messages
// --------------------------------------------------------------------------

TEST(ActiveMessages, DeviceToDeviceRendezvous) {
  Fix f;
  ucx::ActiveMessages am(*f.ctx);
  const std::size_t n = 1u << 20;
  cuda::DeviceBuffer a(*f.sys, 0, n), b(*f.sys, 6, n);
  auto ref = pattern(n, 1);
  std::memcpy(a.get(), ref.data(), n);

  void* got_ptr = nullptr;
  std::uint64_t got_len = 0;
  int got_src = -1;
  am.registerAm(6, 3, [&](std::uint64_t, int) { return b.get(); },
                [&](void* p, std::uint64_t len, int src) {
                  got_ptr = p;
                  got_len = len;
                  got_src = src;
                });
  bool sent = false;
  am.amSend(0, 6, 3, a.get(), n, [&](ucx::Request&) { sent = true; });
  f.sys->engine.run();
  EXPECT_TRUE(sent);
  EXPECT_EQ(got_ptr, b.get());
  EXPECT_EQ(got_len, n);
  EXPECT_EQ(got_src, 0);
  EXPECT_EQ(std::memcmp(b.get(), ref.data(), n), 0);
}

TEST(ActiveMessages, SmallMessagesUseEagerPath) {
  Fix f;
  ucx::ActiveMessages am(*f.ctx);
  cuda::DeviceBuffer a(*f.sys, 0, 64), b(*f.sys, 1, 64);
  auto ref = pattern(64, 2);
  std::memcpy(a.get(), ref.data(), 64);
  int delivered = 0;
  am.registerAm(1, 0, [&](std::uint64_t, int) { return b.get(); },
                [&](void*, std::uint64_t, int) { ++delivered; });
  am.amSend(0, 1, 0, a.get(), 64);
  f.sys->engine.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(std::memcmp(b.get(), ref.data(), 64), 0);
}

TEST(ActiveMessages, ManyMessagesDistinctIds) {
  Fix f(1);
  ucx::ActiveMessages am(*f.ctx);
  std::vector<std::byte> src0 = pattern(128, 3), src1 = pattern(128, 4);
  std::vector<std::byte> dst0(128), dst1(128);
  int d0 = 0, d1 = 0;
  am.registerAm(2, 10, [&](std::uint64_t, int) { return dst0.data(); },
                [&](void*, std::uint64_t, int) { ++d0; });
  am.registerAm(2, 11, [&](std::uint64_t, int) { return dst1.data(); },
                [&](void*, std::uint64_t, int) { ++d1; });
  am.amSend(0, 2, 10, src0.data(), 128);
  am.amSend(1, 2, 11, src1.data(), 128);
  f.sys->engine.run();
  EXPECT_EQ(d0, 1);
  EXPECT_EQ(d1, 1);
  EXPECT_EQ(dst0, src0);
  EXPECT_EQ(dst1, src1);
  EXPECT_EQ(am.delivered(), 2u);
}

TEST(ActiveMessages, UnregisteredIdGoesUnexpected) {
  Fix f(1);
  ucx::ActiveMessages am(*f.ctx);
  std::vector<std::byte> src(64);
  am.amSend(0, 1, 42, src.data(), 64);  // nothing registered for id 42 on PE 1
  f.sys->engine.run();
  EXPECT_EQ(am.delivered(), 0u);
  EXPECT_EQ(f.ctx->worker(1).unexpectedCount(), 1u);
}

TEST(ActiveMessages, AllocatorSeesLengthAndSource) {
  Fix f(1);
  ucx::ActiveMessages am(*f.ctx);
  std::vector<std::byte> src(1234), dst(4096);
  std::uint64_t alloc_len = 0;
  int alloc_src = -1;
  am.registerAm(3, 1,
                [&](std::uint64_t len, int s) {
                  alloc_len = len;
                  alloc_src = s;
                  return dst.data();
                },
                [](void*, std::uint64_t, int) {});
  am.amSend(2, 3, 1, src.data(), 1234);
  f.sys->engine.run();
  EXPECT_EQ(alloc_len, 1234u);
  EXPECT_EQ(alloc_src, 2);
}

// --------------------------------------------------------------------------
// User-provided tags
// --------------------------------------------------------------------------

TEST(UserTag, PrePostedReceiveCompletesWithoutMetadata) {
  Fix f;
  const std::size_t n = 512 * 1024;
  cuda::DeviceBuffer a(*f.sys, 0, n), b(*f.sys, 6, n);
  auto ref = pattern(n, 5);
  std::memcpy(a.get(), ref.data(), n);
  bool received = false;
  // Receive posted first — before the sender does anything.
  f.cmi->runOn(6, [&] {
    f.dev->lrtsRecvDeviceUserTag(6, b.get(), n, 777, core::DeviceRecvType::Charm,
                                 [&] { received = true; });
  });
  f.sys->engine.schedule(sim::usec(100), [&] {
    f.cmi->runOn(0, [&] {
      core::CmiDeviceBuffer buf{a.get(), n, 0};
      f.dev->lrtsSendDeviceUserTag(0, 6, buf, 777);
    });
  });
  f.sys->engine.run();
  EXPECT_TRUE(received);
  EXPECT_EQ(std::memcmp(b.get(), ref.data(), n), 0);
}

TEST(UserTag, TagsEncodeDeviceUserType) {
  Fix f(1);
  cuda::DeviceBuffer a(*f.sys, 0, 64);
  core::CmiDeviceBuffer buf{a.get(), 64, 0};
  f.cmi->runOn(0, [&] { f.dev->lrtsSendDeviceUserTag(0, 1, buf, 0xABCDE); });
  f.sys->engine.run();
  EXPECT_EQ(f.cmi->tags().typeOf(buf.tag), core::MsgType::DeviceUser);
}

TEST(UserTag, DistinctUserTagsMatchIndependently) {
  Fix f(1);
  const std::size_t n = 64 * 1024;
  cuda::DeviceBuffer a1(*f.sys, 0, n), a2(*f.sys, 0, n);
  cuda::DeviceBuffer b1(*f.sys, 1, n), b2(*f.sys, 1, n);
  auto r1 = pattern(n, 6), r2 = pattern(n, 7);
  std::memcpy(a1.get(), r1.data(), n);
  std::memcpy(a2.get(), r2.data(), n);
  int done = 0;
  f.cmi->runOn(1, [&] {
    // Post in reverse order of the sends: matching is by tag, not order.
    f.dev->lrtsRecvDeviceUserTag(1, b2.get(), n, 2, core::DeviceRecvType::Charm,
                                 [&] { ++done; });
    f.dev->lrtsRecvDeviceUserTag(1, b1.get(), n, 1, core::DeviceRecvType::Charm,
                                 [&] { ++done; });
  });
  f.cmi->runOn(0, [&] {
    core::CmiDeviceBuffer x{a1.get(), n, 0}, y{a2.get(), n, 0};
    f.dev->lrtsSendDeviceUserTag(0, 1, x, 1);
    f.dev->lrtsSendDeviceUserTag(0, 1, y, 2);
  });
  f.sys->engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(std::memcmp(b1.get(), r1.data(), n), 0);
  EXPECT_EQ(std::memcmp(b2.get(), r2.data(), n), 0);
}

TEST(UserTag, PrePostingBeatsMetadataLatency) {
  // The whole point of the Sec. VI improvement: fewer microseconds.
  const std::size_t n = 4096;
  auto run = [&](bool prepost) {
    Fix f;
    cuda::DeviceBuffer a(*f.sys, 0, n), b(*f.sys, 6, n);
    sim::TimePoint done = 0;
    if (prepost) {
      f.cmi->runOn(6, [&] {
        f.dev->lrtsRecvDeviceUserTag(6, b.get(), n, 9, core::DeviceRecvType::Charm,
                                     [&] { done = f.sys->engine.now(); });
      });
      f.cmi->runOn(0, [&] {
        core::CmiDeviceBuffer buf{a.get(), n, 0};
        f.dev->lrtsSendDeviceUserTag(0, 6, buf, 9);
      });
    } else {
      const int h = f.cmi->registerHandler([&](cmi::Message msg) {
        std::uint64_t tag = 0;
        std::memcpy(&tag, msg.payload().data(), 8);
        f.dev->lrtsRecvDevice(6, core::DeviceRdmaOp{b.get(), n, tag},
                              core::DeviceRecvType::Charm,
                              [&] { done = f.sys->engine.now(); });
      });
      // h by value: this lambda runs from engine.run() below, after the
      // enclosing else-block (and h) has gone out of scope.
      f.cmi->runOn(0, [&, h] {
        core::CmiDeviceBuffer buf{a.get(), n, 0};
        f.dev->lrtsSendDevice(0, 6, buf);
        std::vector<std::byte> meta(8);
        std::memcpy(meta.data(), &buf.tag, 8);
        f.cmi->send(0, 6, h, std::move(meta));
      });
    }
    f.sys->engine.run();
    return sim::toUs(done);
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
