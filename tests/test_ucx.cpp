#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "sim/rng.hpp"
#include "ucx/context.hpp"

namespace {

using namespace cux;

struct UcxFixture {
  explicit UcxFixture(int nodes = 2, bool gdrcopy = true) : m(model::summit(nodes)) {
    m.ucx.gdrcopy_enabled = gdrcopy;
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  sim::SplitMix64 rng(seed);
  rng.fill(v.data(), n);
  return v;
}

// --------------------------------------------------------------------------
// Matching semantics
// --------------------------------------------------------------------------

TEST(UcxMatching, ExactTagMatch) {
  UcxFixture f;
  auto src = pattern(64, 1);
  std::vector<std::byte> dst(64);
  bool recv_done = false, send_done = false;
  f.ctx->worker(1).tagRecv(dst.data(), 64, 0x42, ucx::kFullMask,
                           [&](ucx::Request& r) {
                             recv_done = true;
                             EXPECT_EQ(r.matched_tag, 0x42u);
                             EXPECT_EQ(r.bytes, 64u);
                             EXPECT_EQ(r.peer_pe, 0);
                           });
  f.ctx->tagSend(0, 1, src.data(), 64, 0x42, [&](ucx::Request&) { send_done = true; });
  f.sys->engine.run();
  EXPECT_TRUE(recv_done);
  EXPECT_TRUE(send_done);
  EXPECT_EQ(src, dst);
}

TEST(UcxMatching, MismatchedTagGoesUnexpected) {
  UcxFixture f;
  auto src = pattern(64, 2);
  std::vector<std::byte> dst(64);
  bool recv_done = false;
  f.ctx->worker(1).tagRecv(dst.data(), 64, 0x1, ucx::kFullMask,
                           [&](ucx::Request&) { recv_done = true; });
  f.ctx->tagSend(0, 1, src.data(), 64, 0x2, {});
  f.sys->engine.run();
  EXPECT_FALSE(recv_done);
  EXPECT_EQ(f.ctx->worker(1).unexpectedCount(), 1u);
  EXPECT_EQ(f.ctx->worker(1).postedCount(), 1u);
  // A matching late receive picks the unexpected message up.
  f.ctx->worker(1).tagRecv(dst.data(), 64, 0x2, ucx::kFullMask,
                           [&](ucx::Request&) { recv_done = true; });
  f.sys->engine.run();
  EXPECT_TRUE(recv_done);
  EXPECT_EQ(src, dst);
}

TEST(UcxMatching, MaskedWildcardReceive) {
  UcxFixture f;
  auto src = pattern(32, 3);
  std::vector<std::byte> dst(32);
  ucx::Tag seen = 0;
  // Match anything whose top 32 bits equal 0xABCD0000'00000000.
  const ucx::Tag base = 0xABCD0000ull << 32;
  f.ctx->worker(1).tagRecv(dst.data(), 32, base, 0xFFFFFFFFull << 32,
                           [&](ucx::Request& r) { seen = r.matched_tag; });
  f.ctx->tagSend(0, 1, src.data(), 32, base | 777, {});
  f.sys->engine.run();
  EXPECT_EQ(seen, base | 777);
  EXPECT_EQ(src, dst);
}

TEST(UcxMatching, PostedReceivesMatchInPostOrder) {
  UcxFixture f;
  auto src = pattern(16, 4);
  std::vector<std::byte> d1(16), d2(16);
  int first_done = 0;
  f.ctx->worker(1).tagRecv(d1.data(), 16, 0x9, ucx::kFullMask,
                           [&](ucx::Request&) { first_done = first_done == 0 ? 1 : first_done; });
  f.ctx->worker(1).tagRecv(d2.data(), 16, 0x9, ucx::kFullMask,
                           [&](ucx::Request&) { first_done = first_done == 0 ? 2 : first_done; });
  f.ctx->tagSend(0, 1, src.data(), 16, 0x9, {});
  f.sys->engine.run();
  EXPECT_EQ(first_done, 1);  // first posted wins
  EXPECT_EQ(src, d1);
}

TEST(UcxMatching, UnexpectedQueueDrainsInArrivalOrder) {
  UcxFixture f;
  auto a = pattern(16, 5);
  auto b = pattern(16, 6);
  std::vector<std::byte> dst(16);
  f.ctx->tagSend(0, 1, a.data(), 16, 0x7, {});
  f.sys->engine.run();
  f.ctx->tagSend(0, 1, b.data(), 16, 0x7, {});
  f.sys->engine.run();
  f.ctx->worker(1).tagRecv(dst.data(), 16, 0x7, ucx::kFullMask, {});
  f.sys->engine.run();
  EXPECT_EQ(dst, a);  // first arrival matched first
}

TEST(UcxMatching, CancelRemovesPostedRecv) {
  UcxFixture f;
  std::vector<std::byte> dst(16);
  bool cancelled = false;
  auto req = f.ctx->worker(1).tagRecv(dst.data(), 16, 0x5, ucx::kFullMask,
                                      [&](ucx::Request& r) { cancelled = r.cancelled(); });
  EXPECT_TRUE(f.ctx->worker(1).cancelRecv(req));
  // The request state flips synchronously, but the completion callback is
  // delivered through the engine like every other completion — it must NOT
  // run in the caller's stack.
  EXPECT_TRUE(req->cancelled());
  EXPECT_FALSE(cancelled);
  EXPECT_EQ(f.ctx->worker(1).postedCount(), 0u);
  EXPECT_FALSE(f.ctx->worker(1).cancelRecv(req));
  f.sys->engine.run();
  EXPECT_TRUE(cancelled);
}

// Regression: cancelRecv on a receive that already matched (here: against
// the unexpected queue at post time) must refuse with false and must not
// disturb the in-flight completion — it fires exactly once, as Done.
TEST(UcxMatching, CancelOnMatchedRequestFailsAndCompletionFiresOnce) {
  UcxFixture f;
  auto src = pattern(16, 9);
  std::vector<std::byte> dst(16);
  f.ctx->tagSend(0, 1, src.data(), 16, 0xB, {});
  f.sys->engine.run();  // the message now sits in the unexpected queue
  int completions = 0;
  auto req = f.ctx->worker(1).tagRecv(dst.data(), 16, 0xB, ucx::kFullMask,
                                      [&](ucx::Request&) { ++completions; });
  // Matched at post time: no longer cancellable, like ucp_request_cancel on
  // a request whose data is already being delivered.
  EXPECT_FALSE(f.ctx->worker(1).cancelRecv(req));
  f.sys->engine.run();
  EXPECT_TRUE(req->done());
  EXPECT_FALSE(req->cancelled());
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(dst, src);
  // Cancelling after completion must also refuse and not re-fire.
  EXPECT_FALSE(f.ctx->worker(1).cancelRecv(req));
  f.sys->engine.run();
  EXPECT_EQ(completions, 1);
}

TEST(UcxMatching, CancelCallbackMayRepostWithoutReentry) {
  // A cancellation callback that immediately reposts the same tag: with the
  // deferred delivery this runs as its own event, so the repost cannot
  // corrupt an in-progress posted_-queue walk, and the reposted receive
  // still matches a later send.
  UcxFixture f;
  auto src = pattern(16, 21);
  std::vector<std::byte> dst(16);
  bool redelivered = false;
  auto req = f.ctx->worker(1).tagRecv(dst.data(), 16, 0xA, ucx::kFullMask,
                                      [&](ucx::Request& r) {
                                        ASSERT_TRUE(r.cancelled());
                                        f.ctx->worker(1).tagRecv(
                                            dst.data(), 16, 0xA, ucx::kFullMask,
                                            [&](ucx::Request&) { redelivered = true; });
                                      });
  EXPECT_TRUE(f.ctx->worker(1).cancelRecv(req));
  f.sys->engine.run();
  EXPECT_EQ(f.ctx->worker(1).postedCount(), 1u);
  f.ctx->tagSend(0, 1, src.data(), 16, 0xA, {});
  f.sys->engine.run();
  EXPECT_TRUE(redelivered);
  EXPECT_EQ(dst, src);
}

// --------------------------------------------------------------------------
// amSend rendezvous payload lifetime (regression)
// --------------------------------------------------------------------------

TEST(UcxActiveMessage, RndvPayloadOutlivesSenderCompletion) {
  // Receiver-side copy is delayed past the sender's ATS completion by a
  // large recv overhead. An earlier revision tied the payload's lifetime to
  // the sender-side completion callback, so this ordering read freed memory
  // (visible under ASan; without it the copied bytes could be garbage).
  UcxFixture f;
  f.m.ucx.recv_overhead_us = 500.0;  // ATS control round trip is ~a few us
  f.ctx = std::make_unique<ucx::Context>(*f.sys, f.m.ucx);
  const std::size_t n = 64 * 1024;  // > host_eager_threshold: owned rendezvous
  auto payload = pattern(n, 33);
  const auto expect = payload;
  std::vector<std::byte> dst(n);
  sim::TimePoint send_done = 0, recv_done = 0;
  f.ctx->worker(1).tagRecv(dst.data(), n, 0x77, ucx::kFullMask,
                           [&](ucx::Request&) { recv_done = f.sys->engine.now(); });
  f.ctx->amSend(0, 1, 0x77, std::move(payload),
                [&](ucx::Request&) { send_done = f.sys->engine.now(); });
  f.sys->engine.run();
  ASSERT_GT(send_done, 0u);
  ASSERT_GT(recv_done, 0u);
  // The whole point: the sender completed BEFORE the receiver copied.
  EXPECT_LT(send_done, recv_done);
  EXPECT_EQ(dst, expect);
}

TEST(UcxActiveMessage, RndvPayloadToHandlerOutlivesSenderCompletion) {
  // Same inversion, delivered through a persistent handler instead of a
  // posted receive (the deliverToHandler rendezvous path).
  UcxFixture f;
  f.m.ucx.recv_overhead_us = 500.0;
  f.ctx = std::make_unique<ucx::Context>(*f.sys, f.m.ucx);
  const std::size_t n = 64 * 1024;
  auto payload = pattern(n, 34);
  const auto expect = payload;
  std::vector<std::byte> got;
  f.ctx->worker(1).setHandler(0x78, ucx::kFullMask, [&](ucx::Delivery d) {
    got.assign(d.payload.begin(), d.payload.end());
  });
  f.ctx->amSend(0, 1, 0x78, std::move(payload), {});
  f.sys->engine.run();
  EXPECT_EQ(got, expect);
}

TEST(UcxMatching, ZeroByteMessages) {
  UcxFixture f;
  bool done = false;
  f.ctx->worker(1).tagRecv(nullptr, 0, 0x3, ucx::kFullMask,
                           [&](ucx::Request& r) {
                             done = true;
                             EXPECT_EQ(r.bytes, 0u);
                           });
  f.ctx->tagSend(0, 1, nullptr, 0, 0x3, {});
  f.sys->engine.run();
  EXPECT_TRUE(done);
}

// --------------------------------------------------------------------------
// Data integrity across the protocol matrix (eager/rndv x host/device x
// intra/inter-node), parameterized over message sizes spanning the
// thresholds.
// --------------------------------------------------------------------------

enum class Space { Host, Device };

struct MatrixParam {
  std::size_t bytes;
  Space src_space;
  Space dst_space;
  bool inter_node;
};

class UcxDataMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(UcxDataMatrix, RoundTripsBytes) {
  const auto p = GetParam();
  UcxFixture f(2);
  const int src_pe = 0;
  const int dst_pe = p.inter_node ? 6 : 1;

  auto ref = pattern(p.bytes, 0xBEEF + p.bytes);
  std::vector<std::byte> host_src, host_dst;
  void* src = nullptr;
  void* dst = nullptr;
  if (p.src_space == Space::Device) {
    src = cuda::deviceAlloc(*f.sys, src_pe, p.bytes, true);
    std::memcpy(src, ref.data(), p.bytes);
  } else {
    host_src = ref;
    src = host_src.data();
  }
  if (p.dst_space == Space::Device) {
    dst = cuda::deviceAlloc(*f.sys, dst_pe, p.bytes, true);
  } else {
    host_dst.resize(p.bytes);
    dst = host_dst.data();
  }

  bool send_done = false, recv_done = false;
  f.ctx->worker(dst_pe).tagRecv(dst, p.bytes, 0x77, ucx::kFullMask,
                                [&](ucx::Request& r) {
                                  recv_done = true;
                                  EXPECT_EQ(r.bytes, p.bytes);
                                });
  f.ctx->tagSend(src_pe, dst_pe, src, p.bytes, 0x77,
                 [&](ucx::Request&) { send_done = true; });
  f.sys->engine.run();
  ASSERT_TRUE(send_done);
  ASSERT_TRUE(recv_done);
  EXPECT_EQ(std::memcmp(dst, ref.data(), p.bytes), 0);

  if (p.src_space == Space::Device) cuda::deviceFree(*f.sys, src);
  if (p.dst_space == Space::Device) cuda::deviceFree(*f.sys, dst);
}

std::vector<MatrixParam> matrixParams() {
  std::vector<MatrixParam> out;
  // Sizes straddling both eager thresholds (4K device, 8K host) and the
  // pipeline chunk (256K).
  const std::size_t sizes[] = {1, 8, 1024, 4096, 4097, 8192, 8193, 65536, 262144, 262145,
                               1u << 20, 4u << 20};
  for (std::size_t s : sizes) {
    for (Space a : {Space::Host, Space::Device}) {
      for (Space b : {Space::Host, Space::Device}) {
        for (bool inter : {false, true}) {
          out.push_back({s, a, b, inter});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, UcxDataMatrix, ::testing::ValuesIn(matrixParams()),
                         [](const ::testing::TestParamInfo<MatrixParam>& info) {
                           const auto& p = info.param;
                           std::string name = std::to_string(p.bytes) + "B_";
                           name += p.src_space == Space::Host ? "h2" : "d2";
                           name += p.dst_space == Space::Host ? "h_" : "d_";
                           name += p.inter_node ? "inter" : "intra";
                           return name;
                         });

// --------------------------------------------------------------------------
// Protocol timing properties
// --------------------------------------------------------------------------

double oneWayUs(UcxFixture& f, int src_pe, int dst_pe, void* src, void* dst, std::size_t n) {
  sim::TimePoint done_at = 0;
  f.ctx->worker(dst_pe).tagRecv(dst, n, 0x1, ucx::kFullMask,
                                [&](ucx::Request&) { done_at = f.sys->engine.now(); });
  f.ctx->tagSend(src_pe, dst_pe, src, n, 0x1, {});
  f.sys->engine.run();
  return sim::toUs(done_at);
}

TEST(UcxTiming, SmallDeviceLatencyNearTwoMicroseconds) {
  // The paper reports the raw UCX GPU-GPU transfer at < 2 us (Sec. IV-B1).
  UcxFixture f(2);
  cuda::DeviceBuffer a(*f.sys, 0, 8), b(*f.sys, 6, 8);
  const double us = oneWayUs(f, 0, 6, a.get(), b.get(), 8);
  EXPECT_GT(us, 1.0);
  EXPECT_LT(us, 4.0);
}

TEST(UcxTiming, GdrcopyDisabledIncreasesSmallDeviceLatency) {
  // The paper: detecting GDRCopy is essential for small-message latency.
  UcxFixture with(2, true), without(2, false);
  cuda::DeviceBuffer a1(*with.sys, 0, 8), b1(*with.sys, 6, 8);
  cuda::DeviceBuffer a2(*without.sys, 0, 8), b2(*without.sys, 6, 8);
  const double fast = oneWayUs(with, 0, 6, a1.get(), b1.get(), 8);
  const double slow = oneWayUs(without, 0, 6, a2.get(), b2.get(), 8);
  EXPECT_GT(slow, 2.0 * fast);
}

TEST(UcxTiming, IntraNodeLargeDeviceNearNvlinkBandwidth) {
  UcxFixture f(1);
  const std::size_t n = 4u << 20;
  cuda::DeviceBuffer a(*f.sys, 0, n, false), b(*f.sys, 1, n, false);
  const double us = oneWayUs(f, 0, 1, a.get(), b.get(), n);
  const double gbps = static_cast<double>(n) / 1e3 / us;
  EXPECT_GT(gbps, 40.0);
  EXPECT_LT(gbps, 50.0);
}

TEST(UcxTiming, InterNodeLargeDevicePipelinesNearIbBandwidth) {
  UcxFixture f(2);
  const std::size_t n = 4u << 20;
  cuda::DeviceBuffer a(*f.sys, 0, n, false), b(*f.sys, 6, n, false);
  const double us = oneWayUs(f, 0, 6, a.get(), b.get(), n);
  const double gbps = static_cast<double>(n) / 1e3 / us;
  // Pipelined staging: most of EDR's 12.5 GB/s but not all (paper: ~10).
  EXPECT_GT(gbps, 8.0);
  EXPECT_LT(gbps, 12.5);
}

TEST(UcxTiming, LatencyMonotonicInSize) {
  UcxFixture f(2);
  double prev = 0.0;
  for (std::size_t n : {64u, 4096u, 65536u, 1u << 20}) {
    UcxFixture g(2);
    cuda::DeviceBuffer a(*g.sys, 0, n, false), b(*g.sys, 6, n, false);
    const double us = oneWayUs(g, 0, 6, a.get(), b.get(), n);
    EXPECT_GT(us, prev);
    prev = us;
  }
}

TEST(UcxTiming, EagerSendCompletesLocallyBeforeDelivery) {
  UcxFixture f(2);
  auto src = pattern(128, 9);
  std::vector<std::byte> dst(128);
  sim::TimePoint send_done = 0, recv_done = 0;
  f.ctx->worker(6).tagRecv(dst.data(), 128, 0x1, ucx::kFullMask,
                           [&](ucx::Request&) { recv_done = f.sys->engine.now(); });
  f.ctx->tagSend(0, 6, src.data(), 128, 0x1,
                 [&](ucx::Request&) { send_done = f.sys->engine.now(); });
  f.sys->engine.run();
  EXPECT_LT(send_done, recv_done);
}

TEST(UcxTiming, RndvSendCompletesAfterDataPulled) {
  UcxFixture f(2);
  const std::size_t n = 1u << 20;
  std::vector<std::byte> src(n), dst(n);
  sim::TimePoint send_done = 0, recv_done = 0;
  f.ctx->worker(6).tagRecv(dst.data(), n, 0x1, ucx::kFullMask,
                           [&](ucx::Request&) { recv_done = f.sys->engine.now(); });
  f.ctx->tagSend(0, 6, src.data(), n, 0x1,
                 [&](ucx::Request&) { send_done = f.sys->engine.now(); });
  f.sys->engine.run();
  EXPECT_GT(send_done, 0u);
  EXPECT_GE(send_done, recv_done);  // ATS travels back after the data lands
}

// Property: many concurrent messages with random sizes/tags all arrive
// intact and in FIFO order per tag.
TEST(UcxProperty, ConcurrentRandomTraffic) {
  UcxFixture f(2);
  sim::SplitMix64 rng(42);
  constexpr int kMessages = 60;
  struct InFlight {
    std::vector<std::byte> src;
    std::vector<std::byte> dst;
    bool done = false;
  };
  std::vector<InFlight> msgs(kMessages);
  for (int i = 0; i < kMessages; ++i) {
    auto& m = msgs[i];
    const std::size_t n = 1 + rng.below(512 * 1024);
    m.src = pattern(n, 100 + static_cast<std::uint64_t>(i));
    m.dst.resize(n);
    const int dst_pe = 1 + static_cast<int>(rng.below(11));
    const ucx::Tag tag = 1000 + static_cast<ucx::Tag>(i);
    f.ctx->worker(dst_pe).tagRecv(m.dst.data(), n, tag, ucx::kFullMask,
                                  [&m](ucx::Request&) { m.done = true; });
    f.ctx->tagSend(0, dst_pe, m.src.data(), n, tag, {});
  }
  f.sys->engine.run();
  for (auto& m : msgs) {
    EXPECT_TRUE(m.done);
    EXPECT_EQ(m.src, m.dst);
  }
}

}  // namespace
