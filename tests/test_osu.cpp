#include <gtest/gtest.h>

#include "apps/osu/osu.hpp"

namespace {

using namespace cux;
using namespace cux::osu;

BenchConfig quick(Stack s, Mode m, Placement p) {
  BenchConfig cfg;
  cfg.stack = s;
  cfg.mode = m;
  cfg.place = p;
  cfg.iters = 5;
  cfg.warmup = 2;
  cfg.window = 16;
  return cfg;
}

TEST(OsuConfig, DefaultSizesSpanOneByteToFourMb) {
  const auto sizes = defaultSizes();
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_EQ(sizes.back(), 4u << 20);
  EXPECT_EQ(sizes.size(), 23u);
}

TEST(OsuConfig, Names) {
  EXPECT_STREQ(name(Stack::Charm), "Charm++");
  EXPECT_STREQ(name(Stack::Ampi), "AMPI");
  EXPECT_STREQ(name(Stack::Ompi), "OpenMPI");
  EXPECT_STREQ(name(Stack::Charm4py), "Charm4py");
  EXPECT_STREQ(suffix(Mode::Device), "D");
  EXPECT_STREQ(suffix(Mode::HostStaging), "H");
}

// Latency sanity: every stack produces positive, size-monotonic latencies.
class OsuLatencySanity : public ::testing::TestWithParam<Stack> {};

TEST_P(OsuLatencySanity, PositiveAndMonotonicOverSize) {
  auto cfg = quick(GetParam(), Mode::Device, Placement::IntraNode);
  cfg.sizes = {64, 65536, 4u << 20};
  const auto pts = runLatency(cfg);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_GT(pts[0].value, 0.0);
  EXPECT_LT(pts[0].value, pts[1].value);
  EXPECT_LT(pts[1].value, pts[2].value);
}

INSTANTIATE_TEST_SUITE_P(AllStacks, OsuLatencySanity,
                         ::testing::Values(Stack::Charm, Stack::Ampi, Stack::Ompi,
                                           Stack::Charm4py),
                         [](const ::testing::TestParamInfo<Stack>& info) {
                           std::string n = name(info.param);
                           for (char& c : n) {
                             if (c == '+') c = 'p';
                           }
                           return n;
                         });

// The paper's headline: GPU-aware beats host staging, with the gap widening
// with message size, for every stack and placement.
struct ShapeParam {
  Stack stack;
  Placement place;
};
class OsuShape : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(OsuShape, DeviceBeatsHostStagingAtLargeSizes) {
  const auto p = GetParam();
  auto h = quick(p.stack, Mode::HostStaging, p.place);
  auto d = quick(p.stack, Mode::Device, p.place);
  h.sizes = d.sizes = {4u << 20};
  const double lat_h = runLatency(h)[0].value;
  const double lat_d = runLatency(d)[0].value;
  EXPECT_GT(lat_h / lat_d, p.place == Placement::IntraNode ? 5.0 : 1.2);
  const double bw_h = runBandwidth(h)[0].value;
  const double bw_d = runBandwidth(d)[0].value;
  EXPECT_GT(bw_d / bw_h, p.place == Placement::IntraNode ? 5.0 : 1.1);
}

std::vector<ShapeParam> shapeParams() {
  std::vector<ShapeParam> out;
  for (Stack s : {Stack::Charm, Stack::Ampi, Stack::Ompi, Stack::Charm4py}) {
    for (Placement p : {Placement::IntraNode, Placement::InterNode}) out.push_back({s, p});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllStacks, OsuShape, ::testing::ValuesIn(shapeParams()),
                         [](const ::testing::TestParamInfo<ShapeParam>& info) {
                           std::string n = name(info.param.stack);
                           for (char& c : n) {
                             if (c == '+') c = 'p';
                           }
                           n += info.param.place == Placement::IntraNode ? "_intra" : "_inter";
                           return n;
                         });

// Layering costs (paper Sec. IV-B1): OpenMPI < Charm++ < AMPI < Charm4py for
// small-message device latency.
TEST(OsuOrdering, SmallMessageDeviceLatencyOrdering) {
  auto lat = [&](Stack s) {
    auto cfg = quick(s, Mode::Device, Placement::IntraNode);
    cfg.sizes = {8};
    return runLatency(cfg)[0].value;
  };
  const double ompi = lat(Stack::Ompi);
  const double charm = lat(Stack::Charm);
  const double ampi = lat(Stack::Ampi);
  const double c4p = lat(Stack::Charm4py);
  EXPECT_LT(ompi, charm);
  EXPECT_LT(charm, ampi);
  EXPECT_LT(ampi, c4p);
  // AMPI's overhead above UCX is ~8 us in the paper.
  EXPECT_NEAR(ampi - ompi, 8.0, 4.0);
}

TEST(OsuOrdering, IntraNodeFasterThanInterNode) {
  for (Stack s : {Stack::Charm, Stack::Ompi}) {
    auto intra = quick(s, Mode::Device, Placement::IntraNode);
    auto inter = quick(s, Mode::Device, Placement::InterNode);
    intra.sizes = inter.sizes = {1u << 20};
    EXPECT_LT(runLatency(intra)[0].value, runLatency(inter)[0].value);
  }
}

TEST(OsuBandwidth, PeaksNearLinkLimits) {
  // Charm++ intra-node peak near NVLink (paper: 44.7 GB/s), inter-node near
  // the pipelined EDR limit (paper: 10 GB/s).
  auto intra = quick(Stack::Charm, Mode::Device, Placement::IntraNode);
  auto inter = quick(Stack::Charm, Mode::Device, Placement::InterNode);
  intra.sizes = inter.sizes = {4u << 20};
  const double bw_intra = runBandwidth(intra)[0].value / 1000.0;  // GB/s
  const double bw_inter = runBandwidth(inter)[0].value / 1000.0;
  EXPECT_GT(bw_intra, 40.0);
  EXPECT_LT(bw_intra, 50.0);
  EXPECT_GT(bw_inter, 8.0);
  EXPECT_LT(bw_inter, 12.5);
}

TEST(OsuBandwidth, AmpiHostStagingDipAt128K) {
  // Paper Sec. IV-B2: AMPI-H bandwidth dips at 128 KB (eager->rendezvous).
  auto cfg = quick(Stack::Ampi, Mode::HostStaging, Placement::IntraNode);
  cfg.sizes = {64 * 1024, 128 * 1024, 256 * 1024};
  const auto pts = runBandwidth(cfg);
  EXPECT_LT(pts[1].value, pts[0].value);  // the dip
  EXPECT_GT(pts[2].value, pts[1].value);  // recovery
}

TEST(OsuBandwidth, Charm4pyBelowOthersButRising) {
  // Paper: Charm4py reaches only ~35.5 GB/s intra-node but keeps rising.
  auto cfg = quick(Stack::Charm4py, Mode::Device, Placement::IntraNode);
  cfg.sizes = {1u << 20, 4u << 20};
  const auto pts = runBandwidth(cfg);
  EXPECT_LT(pts[1].value / 1000.0, 45.0);
  EXPECT_GT(pts[1].value, pts[0].value);
}

TEST(OsuDeterminism, RepeatedRunsIdentical) {
  auto cfg = quick(Stack::Ampi, Mode::Device, Placement::InterNode);
  cfg.sizes = {4096, 1u << 20};
  const auto a = runLatency(cfg);
  const auto b = runLatency(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
}

}  // namespace
