#include <gtest/gtest.h>

#include "apps/train/train.hpp"

/// Data-parallel training workload: gradient correctness, backward/allreduce
/// overlap, and pool reuse, on all three stacks.

namespace {

using namespace cux;

train::TrainConfig smallConfig() {
  train::TrainConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = 8;
  cfg.steps = 3;
  // A smaller model than the default keeps the per-test runtime low while
  // still producing >= 3 buckets.
  cfg.layer_params = {16 * 1024, 64 * 1024, 128 * 1024, 128 * 1024, 64 * 1024, 16 * 1024};
  cfg.bucket_bytes = 1024 * 1024;
  return cfg;
}

class TrainStacks : public ::testing::TestWithParam<train::Stack> {};

TEST_P(TrainStacks, GradientsVerifyAndBucketsOverlap) {
  train::TrainConfig cfg = smallConfig();
  const train::TrainResult res = train::runTrain(cfg, GetParam());

  ASSERT_EQ(res.steps.size(), static_cast<std::size_t>(cfg.steps));
  EXPECT_GE(res.buckets, 3) << "bucketing produced too few buckets to overlap";
  EXPECT_TRUE(res.verified) << "reduced gradients did not match the analytic sums";

  // The pipelined collective overlaps the gradient buckets: the union of the
  // allreduce intervals must be shorter than their serial sum.
  for (std::size_t s = 1; s < res.steps.size(); ++s) {
    const train::StepStat& st = res.steps[s];
    EXPECT_GT(st.bucket_sum_us, 0.0);
    EXPECT_LT(st.allreduce_wall_us, st.bucket_sum_us)
        << "step " << s << ": bucket allreduces ran back-to-back (no overlap)";
    EXPECT_GT(st.step_us, st.compute_us);
  }
}

TEST_P(TrainStacks, SteadyStateStepsAllocateFromPool) {
  train::TrainConfig cfg = smallConfig();
  const train::TrainResult res = train::runTrain(cfg, GetParam());
  // Step 0 faults the gradient buckets in; steps 1..n-1 must reuse them.
  EXPECT_GT(res.pool_hits, 0u);
  // Per-rank, per-bucket allocations for steps >= 1 are all hits, so hits
  // dominate misses for a 3-step run only if reuse actually happens.
  EXPECT_GE(res.pool_hits, static_cast<std::uint64_t>(res.buckets * cfg.ranks));
}

INSTANTIATE_TEST_SUITE_P(AllStacks, TrainStacks,
                         ::testing::Values(train::Stack::Ampi, train::Stack::Charm,
                                           train::Stack::Charm4py),
                         [](const ::testing::TestParamInfo<train::Stack>& i) {
                           switch (i.param) {
                             case train::Stack::Ampi:
                               return "ampi";
                             case train::Stack::Charm:
                               return "charm";
                             case train::Stack::Charm4py:
                               return "charm4py";
                           }
                           return "unknown";
                         });

TEST(Train, DevicePathBeatsHostStaging) {
  train::TrainConfig cfg = smallConfig();
  cfg.steps = 2;
  const train::TrainResult dev = train::runTrain(cfg, train::Stack::Ampi);
  cfg.host_staged = true;
  const train::TrainResult host = train::runTrain(cfg, train::Stack::Ampi);
  EXPECT_TRUE(dev.verified);
  EXPECT_TRUE(host.verified);
  EXPECT_LT(dev.avgStepUs(), host.avgStepUs())
      << "GPU-aware gradient allreduce should beat host staging";
}

TEST(Train, RingAndTreeBothVerify) {
  train::TrainConfig cfg = smallConfig();
  cfg.steps = 2;
  cfg.coll.impl = coll::CollImpl::Ring;
  EXPECT_TRUE(train::runTrain(cfg, train::Stack::Ampi).verified);
  cfg.coll.impl = coll::CollImpl::Tree;
  EXPECT_TRUE(train::runTrain(cfg, train::Stack::Ampi).verified);
  cfg.coll.impl = coll::CollImpl::Reference;
  EXPECT_TRUE(train::runTrain(cfg, train::Stack::Ampi).verified);
}

TEST(Train, NonPowerOfTwoWorkerCount) {
  train::TrainConfig cfg = smallConfig();
  cfg.ranks = 6;
  cfg.steps = 2;
  for (const auto s : {train::Stack::Ampi, train::Stack::Charm, train::Stack::Charm4py}) {
    const train::TrainResult res = train::runTrain(cfg, s);
    EXPECT_TRUE(res.verified) << train::name(s);
  }
}

}  // namespace
