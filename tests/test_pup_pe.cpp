#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/osu/osu.hpp"
#include "charm/pup.hpp"
#include "converse/pe.hpp"
#include "sim/engine.hpp"

namespace {

using namespace cux;

// --------------------------------------------------------------------------
// PUP-lite serialisation
// --------------------------------------------------------------------------

TEST(Pup, TrivialTypesRoundTrip) {
  ck::Packer p;
  p.pack(42);
  p.pack(3.25);
  p.pack(static_cast<std::uint8_t>(7));
  struct POD {
    int a;
    double b;
  };
  p.pack(POD{1, 2.0});
  const auto bytes = p.take();
  ck::Unpacker u(bytes);
  EXPECT_EQ(u.unpack<int>(), 42);
  EXPECT_DOUBLE_EQ(u.unpack<double>(), 3.25);
  EXPECT_EQ(u.unpack<std::uint8_t>(), 7);
  const auto pod = u.unpack<POD>();
  EXPECT_EQ(pod.a, 1);
  EXPECT_DOUBLE_EQ(pod.b, 2.0);
  EXPECT_EQ(u.remaining(), 0u);
}

TEST(Pup, VectorsAndStringsRoundTrip) {
  ck::Packer p;
  std::vector<std::uint32_t> v{1, 2, 3, 4};
  p.pack(v);
  p.pack(std::string("hello pup"));
  p.pack(std::vector<double>{});
  const auto bytes = p.take();
  ck::Unpacker u(bytes);
  EXPECT_EQ(u.unpack<std::vector<std::uint32_t>>(), v);
  EXPECT_EQ(u.unpack<std::string>(), "hello pup");
  EXPECT_TRUE(u.unpack<std::vector<double>>().empty());
}

TEST(Pup, BulkBytesTracksPayloadCopies) {
  ck::Packer p;
  p.pack(7);  // scalar: not bulk
  EXPECT_EQ(p.bulkBytes(), 0u);
  p.pack(std::vector<std::uint8_t>(1000, 1));
  EXPECT_EQ(p.bulkBytes(), 1000u);
  p.pack(std::string(50, 'x'));
  EXPECT_EQ(p.bulkBytes(), 1050u);
}

TEST(Pup, ZerosAppendsPlaceholder) {
  ck::Packer p;
  p.zeros(16);
  const auto bytes = p.take();
  ASSERT_EQ(bytes.size(), 16u);
  for (auto b : bytes) EXPECT_EQ(b, std::byte{0});
}

TEST(Pup, UnpackerOffsetAndSkip) {
  ck::Packer p;
  p.pack(1);
  p.pack(2);
  p.pack(3);
  const auto bytes = p.take();
  ck::Unpacker u(bytes, sizeof(int));  // start past the first int
  EXPECT_EQ(u.unpack<int>(), 2);
  u.skip(sizeof(int));
  EXPECT_EQ(u.remaining(), 0u);
}

TEST(Pup, InterleavedTypesPreserveOrder) {
  ck::Packer p;
  for (int i = 0; i < 50; ++i) {
    p.pack(i);
    p.pack(std::vector<std::uint16_t>(static_cast<std::size_t>(i % 5), static_cast<std::uint16_t>(i)));
  }
  const auto bytes = p.take();
  ck::Unpacker u(bytes);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(u.unpack<int>(), i);
    const auto v = u.unpack<std::vector<std::uint16_t>>();
    EXPECT_EQ(v.size(), static_cast<std::size_t>(i % 5));
  }
}

// --------------------------------------------------------------------------
// PE serialisation semantics
// --------------------------------------------------------------------------

TEST(Pe, ExecQueuesBehindPreviousWork) {
  sim::Engine e;
  cmi::Pe pe(e, 0);
  std::vector<sim::TimePoint> at;
  pe.exec(sim::usec(10), [&] { at.push_back(e.now()); });
  pe.exec(sim::usec(5), [&] { at.push_back(e.now()); });
  e.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], sim::usec(10));
  EXPECT_EQ(at[1], sim::usec(15));  // queued behind the first
}

TEST(Pe, ChargeExtendsBusyHorizonWithoutScheduling) {
  sim::Engine e;
  cmi::Pe pe(e, 3);
  pe.charge(sim::usec(7));
  EXPECT_EQ(pe.busyUntil(), sim::usec(7));
  pe.charge(sim::usec(3));
  EXPECT_EQ(pe.busyUntil(), sim::usec(10));
  EXPECT_TRUE(e.empty());
}

TEST(Pe, IdleGapResetsHorizonToNow) {
  sim::Engine e;
  cmi::Pe pe(e, 0);
  pe.exec(sim::usec(5), [] {});
  e.run();  // now = 5us
  e.schedule(sim::usec(100), [] {});
  e.run();  // now = 100us, PE long idle
  pe.charge(sim::usec(2));
  EXPECT_EQ(pe.busyUntil(), sim::usec(102));
}

TEST(Pe, RunHookWrapsContinuations) {
  sim::Engine e;
  cmi::Pe pe(e, 5);
  int hook_pe = -1;
  bool ran = false;
  pe.run_hook = [&](int id, std::function<void()>& fn) {
    hook_pe = id;
    fn();
  };
  pe.exec(0, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(hook_pe, 5);
}

// --------------------------------------------------------------------------
// OSU suite extensions sanity
// --------------------------------------------------------------------------

TEST(OsuExt, BiBandwidthExceedsUnidirectional) {
  osu::BenchConfig cfg;
  cfg.stack = osu::Stack::Ompi;
  cfg.mode = osu::Mode::Device;
  cfg.place = osu::Placement::InterNode;
  cfg.iters = 8;
  cfg.warmup = 2;
  cfg.window = 16;
  cfg.sizes = {4u << 20};
  const double uni = osu::runBandwidth(cfg)[0].value;
  const double bi = osu::runBiBandwidth(cfg)[0].value;
  EXPECT_GT(bi, 1.5 * uni);  // both directions carry traffic
  EXPECT_LT(bi, 2.2 * uni);
}

TEST(OsuExt, MultiPairLatencyAboveSinglePair) {
  osu::BenchConfig cfg;
  cfg.stack = osu::Stack::Ompi;
  cfg.mode = osu::Mode::Device;
  cfg.place = osu::Placement::InterNode;
  cfg.iters = 8;
  cfg.warmup = 2;
  cfg.sizes = {1u << 20};
  const double single = osu::runLatency(cfg)[0].value;
  const double multi = osu::runMultiLatency(cfg)[0].value;
  EXPECT_GT(multi, single);  // six pairs share one NIC
}

}  // namespace
