#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "apps/osu/osu.hpp"
#include "hw/cuda.hpp"
#include "hw/path_sched.hpp"
#include "model/model.hpp"
#include "sim/shard.hpp"
#include "ucx/context.hpp"

/// Multi-path NVLink / multi-rail NIC transfers: route enumeration on
/// hw::Machine, the occupancy-aware chunk scheduler, CUDA-graph batched
/// submission, the determinism contracts (disabled == bit-identical to the
/// seed; enabled == run-to-run and shard-count invariant), and the measured
/// speedups the feature exists for.

namespace {

using namespace cux;

// --------------------------------------------------------------------------
// hw::Path hardening: capacity overflow is a hard error in every build mode.
// --------------------------------------------------------------------------

TEST(MultiPath, PathOverflowThrows) {
  hw::Link l("x", hw::LinkParams{1.0, 50.0});
  hw::Path p;
  for (std::size_t i = 0; i < hw::Path::kMaxLinks; ++i) p.push_back(&l);
  EXPECT_EQ(p.size(), hw::Path::kMaxLinks);
  EXPECT_THROW(p.push_back(&l), std::length_error);
  EXPECT_EQ(p.size(), hw::Path::kMaxLinks);  // failed push leaves the path intact
}

// --------------------------------------------------------------------------
// Route enumeration.
// --------------------------------------------------------------------------

TEST(MultiPath, RouteEnumerationIntraNode) {
  model::Model m = model::summit(1);
  m.machine.nvlink_bricks = 2;
  hw::Machine machine(m.machine);
  // PEs 0 and 1 share a socket on summit (3 GPUs per socket).
  const auto routes = machine.deviceRoutes(0, 1, /*max_staged=*/1, /*host_bounce=*/true);
  ASSERT_EQ(routes.size(), 3u);
  EXPECT_STREQ(routes[0].kind, "direct");
  EXPECT_EQ(routes[0].path.size(), 2u);  // gpu0 up, gpu1 down — same socket, no X-Bus
  EXPECT_STREQ(routes[1].kind, "staged");
  EXPECT_EQ(routes[1].path.size(), 4u);  // up, neighbor down, neighbor up, down
  EXPECT_STREQ(routes[2].kind, "host");
  EXPECT_EQ(routes[2].path.size(), 3u);  // up, shm, down
  // The staged route rides brick 1, so it shares no link with the direct
  // route (the speedup exists because the paths are disjoint).
  for (hw::Link* a : routes[0].path)
    for (hw::Link* b : routes[1].path) EXPECT_NE(a, b);
  // Same GPU: nothing to route.
  EXPECT_TRUE(machine.deviceRoutes(2, 2, 1, true).empty());
}

TEST(MultiPath, RouteEnumerationInterNodeRails) {
  model::Model m = model::summit(2);
  m.machine.nic_rails = 2;
  hw::Machine machine(m.machine);
  const auto routes = machine.deviceRoutes(0, 6, /*max_staged=*/2, /*host_bounce=*/true);
  ASSERT_EQ(routes.size(), 2u);  // one route per rail; staging/bounce are intra-node only
  for (std::size_t r = 0; r < routes.size(); ++r) {
    EXPECT_STREQ(routes[r].kind, "rail");
    EXPECT_EQ(routes[r].rail, static_cast<int>(r));
    EXPECT_EQ(routes[r].path.size(), 4u);  // up, nic up, nic down, down
  }
  // The rails use distinct NIC links in both directions.
  EXPECT_NE(routes[0].path[1], routes[1].path[1]);
  EXPECT_NE(routes[0].path[2], routes[1].path[2]);
}

TEST(MultiPath, SingleBrickSingleRailKeepsSeedLinkNames) {
  // The default layout (1 brick, 1 rail) must be indistinguishable from the
  // seed: same link names, no suffixes.
  model::Model m = model::summit(1);
  hw::Machine machine(m.machine);
  EXPECT_EQ(machine.gpuUp(hw::GpuId{0, 0}).name(), "n0.gpu0.up");
  EXPECT_EQ(machine.nicUp(0).name(), "n0.nic.up");
}

// --------------------------------------------------------------------------
// PathScheduler: projection, least-loaded assignment, deterministic
// tie-break, exclusion.
// --------------------------------------------------------------------------

std::vector<hw::Machine::Route> twoRoutes(hw::Link& a, hw::Link& b) {
  hw::Machine::Route r0, r1;
  r0.path.push_back(&a);
  r1.path.push_back(&b);
  return {r0, r1};
}

TEST(MultiPath, SchedulerProjectionMatchesCommit) {
  hw::Link a("a", hw::LinkParams{1.0, 50.0}), b("b", hw::LinkParams{2.0, 25.0});
  hw::PathScheduler sched(twoRoutes(a, b));
  const std::uint64_t chunk = 512 * 1024;
  for (int i = 0; i < 6; ++i) {
    const std::size_t pick = sched.best(0, chunk);
    const sim::TimePoint projected = sched.project(pick, 0, chunk);
    EXPECT_EQ(sched.commit(pick, 0, chunk), projected) << "chunk " << i;
  }
  // Both routes carried bytes: the scheduler really did split.
  EXPECT_GT(sched.bytesPerRoute()[0], 0u);
  EXPECT_GT(sched.bytesPerRoute()[1], 0u);
  // The faster link got at least as many bytes as the slower one.
  EXPECT_GE(sched.bytesPerRoute()[0], sched.bytesPerRoute()[1]);
}

TEST(MultiPath, SchedulerTieBreaksTowardsLowestIndex) {
  hw::Link a("a", hw::LinkParams{1.0, 50.0}), b("b", hw::LinkParams{1.0, 50.0});
  hw::PathScheduler sched(twoRoutes(a, b));
  EXPECT_EQ(sched.best(0, 4096), 0u);  // identical idle routes: lowest index wins
  sched.commit(0, 0, 1u << 20);
  EXPECT_EQ(sched.best(0, 4096), 1u);  // route 0 now busy: least-loaded wins
}

TEST(MultiPath, SchedulerExcludeBarsRouteUnlessLast) {
  hw::Link a("a", hw::LinkParams{1.0, 50.0}), b("b", hw::LinkParams{1.0, 50.0});
  hw::PathScheduler sched(twoRoutes(a, b));
  EXPECT_EQ(sched.best(0, 4096, /*exclude=*/0), 1u);
  hw::Machine::Route only;
  only.path.push_back(&a);
  hw::PathScheduler one(std::vector<hw::Machine::Route>{only});
  EXPECT_EQ(one.best(0, 4096, /*exclude=*/0), 0u);  // sole route: exclusion ignored
}

TEST(MultiPath, NumChunks) {
  const hw::PathScheduler::Params p;  // 512 KiB chunks, 2 MiB min split
  EXPECT_EQ(hw::PathScheduler::numChunks(1, p), 1u);
  EXPECT_EQ(hw::PathScheduler::numChunks(512 * 1024, p), 1u);
  EXPECT_EQ(hw::PathScheduler::numChunks(512 * 1024 + 1, p), 2u);
  EXPECT_EQ(hw::PathScheduler::numChunks(4u << 20, p), 8u);
}

// --------------------------------------------------------------------------
// CUDA-graph batched submission: one call+launch for the whole chain vs one
// per kernel.
// --------------------------------------------------------------------------

TEST(MultiPath, GraphBatchedSubmissionAmortisesLaunchOverhead) {
  const int n = 8;
  const sim::Duration cost = sim::usec(10.0);

  auto elapsed = [&](bool graph) {
    model::Model m = model::summit(1);
    hw::System sys(m.machine);
    cuda::Stream s(sys, 0);
    sim::TimePoint done = 0;
    // The last node's effect runs at op completion, so it reads the finish
    // time off the engine clock.
    std::function<void()> mark = [&sys, &done] { done = sys.engine.now(); };
    if (graph) {
      cuda::GraphBuilder b(sys, 0);
      for (int i = 0; i < n; ++i) b.addKernel(cost, i == n - 1 ? mark : std::function<void()>{});
      const cuda::Graph g = b.instantiate();
      EXPECT_EQ(g.nodeCount(), static_cast<std::size_t>(n));
      g.launch(s);
    } else {
      for (int i = 0; i < n; ++i) s.launch(cost, i == n - 1 ? mark : std::function<void()>{});
    }
    sys.engine.run();
    return done;
  };

  const model::Model m = model::summit(1);
  const sim::TimePoint graphed = elapsed(true);
  const sim::TimePoint separate = elapsed(false);
  // Graph: one cuda_call + one graph launch, then the kernels back to back.
  EXPECT_EQ(graphed, sim::usec(m.machine.cuda_call_us) +
                         sim::usec(m.machine.cuda_graph_launch_us) + n * cost);
  // Separate: every kernel pays cuda_call + kernel_launch.
  EXPECT_EQ(separate,
            n * (sim::usec(m.machine.cuda_call_us) + sim::usec(m.machine.kernel_launch_us) +
                 cost));
  EXPECT_LT(graphed, separate);
}

TEST(MultiPath, GraphEffectsRunAtCompletion) {
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  cuda::Stream s(sys, 0);
  int fired = 0;
  cuda::GraphBuilder b(sys, 0);
  b.addKernel(sim::usec(5.0), [&] { ++fired; });
  b.addKernel(sim::usec(5.0), [&] { ++fired; });
  const cuda::Graph g = b.instantiate();
  g.launch(s);
  g.launch(s);  // graphs are reusable
  EXPECT_EQ(fired, 0);
  sys.engine.run();
  EXPECT_EQ(fired, 4);
  EXPECT_TRUE(cuda::Graph{}.empty());
}

// --------------------------------------------------------------------------
// Determinism contracts.
// --------------------------------------------------------------------------

/// Device rendezvous traffic (intra + inter node, below and above the split
/// threshold) under a given machine/UCX configuration; returns the trace
/// hash and asserts everything completed.
std::uint64_t deviceTrafficHash(const model::Model& m) {
  hw::System sys(m.machine);
  sys.trace.enable();
  ucx::Context ctx(sys, m.ucx);
  std::vector<cuda::DeviceBuffer> bufs;
  int done = 0, expected = 0;
  int pair = 0;
  for (const std::uint64_t size : {64u * 1024u, 512u * 1024u, 4u * 1024u * 1024u}) {
    for (const int dst_pe : {1, 4, 6}) {  // same socket / other socket / other node
      const auto tag = static_cast<ucx::Tag>(0x300 + pair++);
      bufs.emplace_back(sys, 0, size);
      bufs.emplace_back(sys, dst_pe, size);
      auto* src = bufs[bufs.size() - 2].get();
      auto* dst = bufs.back().get();
      ctx.worker(dst_pe).tagRecv(dst, size, tag, ucx::kFullMask,
                                 [&](ucx::Request&) { ++done; });
      ctx.tagSend(0, dst_pe, src, size, tag, [&](ucx::Request&) { ++done; });
      expected += 2;
    }
  }
  sys.engine.run();
  EXPECT_EQ(done, expected);
  return sys.trace.hash();
}

model::Model multipathModel(bool enabled) {
  model::Model m = model::summit(2);
  m.machine.backed_device_memory = false;
  if (enabled) {
    m.machine.nvlink_bricks = 2;
    m.machine.nic_rails = 2;
  }
  m.ucx.multipath.enabled = enabled;
  return m;
}

TEST(MultiPath, DisabledIsBitIdenticalToSeedConfig) {
  // A configuration that mentions every multipath knob but leaves
  // enabled == false (and keeps 1 brick / 1 rail) must produce the exact
  // seed timeline: same layout, same names, no scheduler involvement.
  model::Model configured = model::summit(2);
  configured.machine.backed_device_memory = false;
  configured.ucx.multipath.enabled = false;
  configured.ucx.multipath.chunk_bytes = 256 * 1024;
  configured.ucx.multipath.min_split_bytes = 1u << 20;
  configured.ucx.multipath.max_staged_routes = 3;
  configured.ucx.multipath.host_bounce = true;
  configured.ucx.multipath.cuda_graphs = false;
  model::Model pristine = model::summit(2);
  pristine.machine.backed_device_memory = false;
  EXPECT_EQ(deviceTrafficHash(configured), deviceTrafficHash(pristine));
}

TEST(MultiPath, EnabledIsDeterministicAndChangesTheTimeline) {
  const auto h1 = deviceTrafficHash(multipathModel(true));
  const auto h2 = deviceTrafficHash(multipathModel(true));
  EXPECT_EQ(h1, h2);  // run-to-run bit-identical
  EXPECT_NE(h1, deviceTrafficHash(multipathModel(false)));
}

TEST(MultiPath, SchedulerStatsAccumulate) {
  model::Model m = multipathModel(true);
  hw::System sys(m.machine);
  ucx::Context ctx(sys, m.ucx);
  cuda::DeviceBuffer src(sys, 0, 8u << 20), dst(sys, 1, 8u << 20);
  bool done = false;
  ctx.worker(1).tagRecv(dst.get(), 8u << 20, 5, ucx::kFullMask,
                        [&](ucx::Request&) { done = true; });
  ctx.tagSend(0, 1, src.get(), 8u << 20, 5, {});
  sys.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(ctx.multipathTransfers(), 1u);
  EXPECT_EQ(ctx.multipathSplits(), 1u);  // 8 MiB >= min_split with 2 routes
  EXPECT_EQ(ctx.multipathChunks(), 16u);  // 8 MiB / 512 KiB
  EXPECT_EQ(ctx.multipathReroutes(), 0u);  // fault-free
}

// --------------------------------------------------------------------------
// The speedups the feature exists for (ISSUE 9 acceptance).
// --------------------------------------------------------------------------

osu::BenchConfig bwConfig(osu::Placement place) {
  osu::BenchConfig cfg;
  cfg.stack = osu::Stack::Charm;
  cfg.mode = osu::Mode::Device;
  cfg.place = place;
  cfg.iters = 5;
  cfg.warmup = 2;
  cfg.model = model::summit(place == osu::Placement::InterNode ? 2 : 1);
  cfg.model.machine.backed_device_memory = false;
  return cfg;
}

TEST(MultiPath, IntraNodeSpeedupAtLeast1p5x) {
  osu::BenchConfig single = bwConfig(osu::Placement::IntraNode);
  osu::BenchConfig multi = bwConfig(osu::Placement::IntraNode);
  multi.model.machine.nvlink_bricks = 2;
  multi.model.ucx.multipath.enabled = true;
  for (const std::size_t bytes : {4u << 20, 16u << 20}) {
    const double s = osu::bandwidthPoint(single, bytes);
    const double d = osu::bandwidthPoint(multi, bytes);
    EXPECT_GE(d / s, 1.5) << "bytes=" << bytes;
  }
}

TEST(MultiPath, InterNodeBandwidthScalesWithRails) {
  double prev = 0;
  for (const int rails : {1, 2, 4}) {
    osu::BenchConfig cfg = bwConfig(osu::Placement::InterNode);
    cfg.model.machine.nic_rails = rails;
    cfg.model.ucx.multipath.enabled = true;
    const double bw = osu::bandwidthPoint(cfg, 4u << 20);
    if (rails == 2) EXPECT_GE(bw / prev, 1.3);
    if (rails == 4) EXPECT_GT(bw, prev);
    prev = bw;
  }
}

// --------------------------------------------------------------------------
// Fault interaction: a chunk dropped on one route re-routes through the
// surviving ones and the transfer still completes.
// --------------------------------------------------------------------------

TEST(MultiPath, UnderLossCompletesAndReroutes) {
  model::Model m = multipathModel(true);
  m.machine.fault = sim::FaultConfig::uniformLoss(0.25, 7);
  hw::System sys(m.machine);
  ucx::Context ctx(sys, m.ucx);
  const std::uint64_t size = 8u << 20;
  std::vector<cuda::DeviceBuffer> bufs;
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    bufs.emplace_back(sys, 0, size);
    bufs.emplace_back(sys, 1, size);
    auto* src = bufs[bufs.size() - 2].get();
    auto* dst = bufs.back().get();
    const auto tag = static_cast<ucx::Tag>(0x40 + i);
    ctx.worker(1).tagRecv(dst, size, tag, ucx::kFullMask, [&](ucx::Request&) { ++done; });
    ctx.tagSend(0, 1, src, size, tag, [&](ucx::Request&) { ++done; });
  }
  sys.engine.run();
  EXPECT_EQ(done, 8);  // every transfer completed despite the loss
  EXPECT_GT(ctx.multipathReroutes(), 0u);  // at least one chunk changed route
}

// --------------------------------------------------------------------------
// Shard-count invariance: the chunk schedule is a pure function of topology
// and occupancy, so routing a sharded message storm by scheduler-chosen
// paths gives identical physical outcomes at any shard count.
// --------------------------------------------------------------------------

TEST(MultipathShard, SchedulerRoutedStormIsShardCountInvariant) {
  auto once = [](int shards) {
    model::Model m = model::summit(2);
    m.machine.smp_shards = shards;
    m.machine.nvlink_bricks = 2;
    m.machine.nic_rails = 2;
    hw::System sys(m.machine);
    const sim::ShardPlan plan = sys.shardPlan();
    sim::ShardedEngine se(plan);
    sim::StormConfig cfg;
    cfg.walkers_per_pe = 2;
    cfg.hops = 12;
    // Hop latency = the scheduler's pick for a 1 MiB chunk over the
    // enumerated routes, read-only (project/best mutate nothing), so the
    // same deterministic choice is made regardless of which shard asks.
    const sim::StormResult r = sim::runMessageStorm(se, cfg, [&sys](int a, int b) {
      auto routes = sys.machine.deviceRoutes(a, b, 1, false);
      if (routes.empty()) return sys.machine.pathLatency(sys.machine.hostToHostPath(a, b));
      const hw::PathScheduler sched(std::move(routes));
      const std::size_t pick = sched.best(0, 1u << 20);
      return hw::Machine::pathLatency(sched.route(pick).path);
    });
    EXPECT_EQ(se.pastClamped(), 0u) << "machine-derived lookahead violated";
    return r;
  };
  const sim::StormResult s1 = once(1);
  const sim::StormResult s1b = once(1);
  const sim::StormResult s2 = once(2);
  EXPECT_EQ(s1.hash, s1b.hash);
  EXPECT_EQ(s1.deliveries, s2.deliveries);
  EXPECT_EQ(s1.last_delivery, s2.last_delivery);
}

}  // namespace
