#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "charm/charm.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "sim/rng.hpp"
#include "ucx/rma.hpp"

namespace {

using namespace cux;

struct Fix {
  explicit Fix(int nodes = 1) : m(model::summit(nodes)) {
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    rt = std::make_unique<ck::Runtime>(*sys, *ctx, m);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<ck::Runtime> rt;
};

// --------------------------------------------------------------------------
// Entry-method argument matrix
// --------------------------------------------------------------------------

struct ArgChare : ck::Chare {
  void noArgs() { ++no_args; }
  void manyScalars(std::uint8_t a, std::int16_t b, std::uint32_t c, std::int64_t d, float e,
                   double f, bool g) {
    scalar_sum = a + b + static_cast<double>(c) + static_cast<double>(d) + e + f + (g ? 1 : 0);
  }
  void mixed(std::string s, std::vector<double> v, int tail) {
    got_s = std::move(s);
    got_v = std::move(v);
    got_tail = tail;
  }
  void bufferSandwich(std::string before, ck::Buffer buf, std::string after) {
    got_s = before + "|" + after;
    got_buf_size = buf.size();
  }
  void sandwichPost(std::span<ck::Buffer> bufs) { bufs[0].setDestination(dst, cap); }

  int no_args = 0;
  double scalar_sum = 0;
  std::string got_s;
  std::vector<double> got_v;
  int got_tail = 0;
  std::uint64_t got_buf_size = 0;
  void* dst = nullptr;
  std::uint64_t cap = 0;
};

TEST(CharmEntryMatrix, NoArgumentEntry) {
  Fix f;
  auto p = f.rt->create<ArgChare>(1);
  f.rt->startOn(0, [&] { p.send<&ArgChare::noArgs>(); });
  f.sys->engine.run();
  EXPECT_EQ(p.local()->no_args, 1);
}

TEST(CharmEntryMatrix, SevenScalarTypes) {
  Fix f;
  auto p = f.rt->create<ArgChare>(2);
  f.rt->startOn(0, [&] {
    p.send<&ArgChare::manyScalars>(std::uint8_t{200}, std::int16_t{-300}, 70000u,
                                   std::int64_t{-5'000'000'000}, 1.5f, 2.25, true);
  });
  f.sys->engine.run();
  EXPECT_DOUBLE_EQ(p.local()->scalar_sum,
                   200.0 - 300.0 + 70000.0 - 5'000'000'000.0 + 1.5 + 2.25 + 1.0);
}

TEST(CharmEntryMatrix, StringVectorAndScalar) {
  Fix f;
  auto p = f.rt->create<ArgChare>(3);
  std::vector<double> v{1.0, 2.0, 3.0};
  f.rt->startOn(0, [&] { p.send<&ArgChare::mixed>(std::string("héllo"), v, -9); });
  f.sys->engine.run();
  EXPECT_EQ(p.local()->got_s, "héllo");
  EXPECT_EQ(p.local()->got_v, v);
  EXPECT_EQ(p.local()->got_tail, -9);
}

TEST(CharmEntryMatrix, BufferBetweenHostArgs) {
  ck::setPostEntry<&ArgChare::bufferSandwich, &ArgChare::sandwichPost>();
  Fix f;
  auto p = f.rt->create<ArgChare>(4);
  cuda::DeviceBuffer src(*f.sys, 0, 32768), dst(*f.sys, 4, 32768);
  p.local()->dst = dst.get();
  p.local()->cap = 32768;
  f.rt->startOn(0, [&] {
    p.send<&ArgChare::bufferSandwich>(std::string("pre"), ck::Buffer(src.get(), 32768),
                                      std::string("post"));
  });
  f.sys->engine.run();
  EXPECT_EQ(p.local()->got_s, "pre|post");
  EXPECT_EQ(p.local()->got_buf_size, 32768u);
}

TEST(CharmEntryMatrix, LargeVectorArgumentsRoundTrip) {
  Fix f;
  auto p = f.rt->create<ArgChare>(5);
  std::vector<double> big(20000);
  sim::SplitMix64 rng(1);
  for (auto& x : big) x = rng.uniform();
  f.rt->startOn(0, [&] { p.send<&ArgChare::mixed>(std::string(), big, 1); });
  f.sys->engine.run();
  EXPECT_EQ(p.local()->got_v, big);
}

// --------------------------------------------------------------------------
// RMA stress: many concurrent operations on one window
// --------------------------------------------------------------------------

TEST(RmaStress, ConcurrentPutsToDisjointOffsets) {
  Fix f(2);
  ucx::Rma rma(*f.ctx);
  std::vector<std::byte> window(12 * 256);
  auto rkey = rma.memMap(6, window.data(), window.size());
  std::vector<std::vector<std::byte>> srcs;
  int done = 0;
  for (int pe = 0; pe < 12; ++pe) {
    srcs.emplace_back(256, static_cast<std::byte>(pe + 1));
    rma.put(pe, srcs.back().data(), 256, rkey, static_cast<std::uint64_t>(pe) * 256,
            [&](ucx::Request&) { ++done; });
  }
  f.sys->engine.run();
  EXPECT_EQ(done, 12);
  for (int pe = 0; pe < 12; ++pe) {
    EXPECT_EQ(window[static_cast<std::size_t>(pe) * 256], static_cast<std::byte>(pe + 1));
  }
  EXPECT_EQ(rma.puts(), 12u);
}

TEST(RmaStress, FetchAddBuildsASharedCounterAcrossNodes) {
  Fix f(4);
  ucx::Rma rma(*f.ctx);
  std::uint64_t counter = 0;
  auto rkey = rma.memMap(0, &counter, 8);
  constexpr int kOps = 96;  // 4 ops from each of 24 PEs
  for (int i = 0; i < kOps; ++i) {
    rma.atomicFetchAdd(i % 24, rkey, 0, 1, nullptr);
  }
  f.sys->engine.run();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(rma.atomics(), static_cast<std::uint64_t>(kOps));
}

// --------------------------------------------------------------------------
// Converse ordering under SMP mode
// --------------------------------------------------------------------------

TEST(SmpOrdering, MessagesBetweenPairStayFifoThroughCommThread) {
  model::Model m = model::summit(1);
  m.costs.smp_comm_thread = true;
  hw::System sys(m.machine);
  ucx::Context ctx(sys, m.ucx);
  cmi::Converse cmi(sys, ctx, m.costs);
  std::vector<int> order;
  const int h = cmi.registerHandler([&](cmi::Message msg) {
    int v = 0;
    std::memcpy(&v, msg.payload().data(), 4);
    order.push_back(v);
  });
  cmi.runOn(0, [&] {
    for (int i = 0; i < 15; ++i) {
      std::vector<std::byte> p(4);
      std::memcpy(p.data(), &i, 4);
      cmi.send(0, 3, h, std::move(p));
    }
  });
  sys.engine.run();
  ASSERT_EQ(order.size(), 15u);
  for (int i = 0; i < 15; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
