#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "charm/array.hpp"
#include "model/model.hpp"
#include "ucx/context.hpp"

namespace {

using namespace cux;

struct ArrFixture {
  explicit ArrFixture(int nodes = 1) : m(model::summit(nodes)) {
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    rt = std::make_unique<ck::Runtime>(*sys, *ctx, m);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<ck::Runtime> rt;
};

struct Cell : ck::Chare {
  explicit Cell(std::array<int, 2> idx) : index(idx) {}
  void bump(int v) {
    sum += v;
    ++hits;
  }
  void fromNeighbor(int x, int y) { neighbor_msgs.push_back({x, y}); }
  std::array<int, 2> index;
  int sum = 0;
  int hits = 0;
  std::vector<std::array<int, 2>> neighbor_msgs;
};

TEST(CharmArray, ElementsGetTheirIndices) {
  ArrFixture f;
  ck::Array<Cell, 2> arr(*f.rt, {4, 3});
  EXPECT_EQ(arr.size(), 12);
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 3; ++y) {
      auto* c = arr.local({x, y});
      ASSERT_NE(c, nullptr);
      EXPECT_EQ(c->index[0], x);
      EXPECT_EQ(c->index[1], y);
    }
  }
}

TEST(CharmArray, RoundRobinMappingOverdecomposes) {
  ArrFixture f;  // 6 PEs
  ck::Array<Cell, 2> arr(*f.rt, {4, 6});  // 24 elements = 4 per PE
  std::vector<int> per_pe(6, 0);
  for (int i = 0; i < arr.size(); ++i) ++per_pe[static_cast<std::size_t>(arr.peOf(i))];
  for (int pe = 0; pe < 6; ++pe) EXPECT_EQ(per_pe[static_cast<std::size_t>(pe)], 4);
}

TEST(CharmArray, IndexLinearisationRoundTrips) {
  ArrFixture f;
  ck::Array<Cell, 2> arr(*f.rt, {5, 7});
  for (int i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr.linearOf(arr.indexOf(i)), i);
  }
  EXPECT_TRUE(arr.inBounds({0, 0}));
  EXPECT_TRUE(arr.inBounds({4, 6}));
  EXPECT_FALSE(arr.inBounds({5, 0}));
  EXPECT_FALSE(arr.inBounds({0, -1}));
}

TEST(CharmArray, PointToElementMessaging) {
  ArrFixture f;
  ck::Array<Cell, 2> arr(*f.rt, {3, 3});
  f.rt->startOn(0, [&] { arr[{2, 1}].send<&Cell::bump>(41); });
  f.sys->engine.run();
  EXPECT_EQ(arr.local({2, 1})->sum, 41);
  EXPECT_EQ(arr.local({0, 0})->sum, 0);
}

TEST(CharmArray, BroadcastHitsEveryElement) {
  ArrFixture f;
  ck::Array<Cell, 2> arr(*f.rt, {4, 5});
  f.rt->startOn(2, [&] { arr.broadcast<&Cell::bump>(3); });
  f.sys->engine.run();
  for (int i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr.local(arr.indexOf(i))->sum, 3);
    EXPECT_EQ(arr.local(arr.indexOf(i))->hits, 1);
  }
}

TEST(CharmArray, NeighborExchangePattern) {
  // Every element messages its 4-neighbourhood — the shape of a 2D stencil.
  ArrFixture f;
  ck::Array<Cell, 2> arr(*f.rt, {4, 4});
  f.rt->startOn(0, [&] {
    for (int i = 0; i < arr.size(); ++i) {
      const auto idx = arr.indexOf(i);
      const std::array<std::array<int, 2>, 4> nbrs{{{idx[0] - 1, idx[1]},
                                                    {idx[0] + 1, idx[1]},
                                                    {idx[0], idx[1] - 1},
                                                    {idx[0], idx[1] + 1}}};
      for (const auto& n : nbrs) {
        if (arr.inBounds(n)) arr[n].send<&Cell::fromNeighbor>(idx[0], idx[1]);
      }
    }
  });
  f.sys->engine.run();
  // Corner elements hear from 2 neighbours, edges 3, interior 4.
  EXPECT_EQ(arr.local({0, 0})->neighbor_msgs.size(), 2u);
  EXPECT_EQ(arr.local({1, 0})->neighbor_msgs.size(), 3u);
  EXPECT_EQ(arr.local({1, 1})->neighbor_msgs.size(), 4u);
}

struct Cell1D : ck::Chare {
  explicit Cell1D(std::array<int, 1> idx) : i(idx[0]) {}
  void token(int v) { got = v; }
  int i;
  int got = -1;
};

TEST(CharmArray, OneDimensionalRing) {
  ArrFixture f;
  ck::Array<Cell1D, 1> arr(*f.rt, {17});
  f.rt->startOn(0, [&] {
    for (int i = 0; i < 17; ++i) arr[{(i + 1) % 17}].send<&Cell1D::token>(i);
  });
  f.sys->engine.run();
  for (int i = 0; i < 17; ++i) {
    EXPECT_EQ(arr.local({i})->got, (i - 1 + 17) % 17);
  }
}

// SMP mode smoke: the comm-thread build must stay functionally identical.
TEST(SmpMode, FunctionallyIdenticalJustSlower) {
  auto run = [](bool smp) {
    model::Model m = model::summit(2);
    m.costs.smp_comm_thread = smp;
    hw::System sys(m.machine);
    ucx::Context ctx(sys, m.ucx);
    ck::Runtime rt(sys, ctx, m);
    ck::Array<Cell1D, 1> arr(rt, {12});
    rt.startOn(0, [&] {
      for (int i = 0; i < 12; ++i) arr[{i}].send<&Cell1D::token>(100 + i);
    });
    sys.engine.run();
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(arr.local({i})->got, 100 + i);
    }
    return sim::toUs(sys.engine.now());
  };
  const double plain = run(false);
  const double smp = run(true);
  EXPECT_GT(smp, plain);  // comm-thread hops cost time
}

}  // namespace
