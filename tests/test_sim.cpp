#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/small_fn.hpp"
#include "sim/future.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

namespace {

using namespace cux;

TEST(Engine, StartsAtTimeZero) {
  sim::Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ExecutesInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule(300, [&] { order.push_back(3); });
  e.schedule(100, [&] { order.push_back(1); });
  e.schedule(200, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 300u);
}

TEST(Engine, SimultaneousEventsFifo) {
  sim::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.schedule(42, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, PastSchedulesClampToNow) {
  sim::Engine e;
  sim::TimePoint seen = 1;
  e.schedule(100, [&] {
    e.schedule(10, [&] { seen = e.now(); });  // in the past: clamps to 100
  });
  e.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, AfterSchedulesRelative) {
  sim::Engine e;
  sim::TimePoint seen = 0;
  e.schedule(50, [&] { e.after(25, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_EQ(seen, 75u);
}

TEST(Engine, CancelPreventsExecution) {
  sim::Engine e;
  bool ran = false;
  auto id = e.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, CancelTwiceFails) {
  sim::Engine e;
  auto id = e.schedule(10, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelFiredEventFails) {
  sim::Engine e;
  auto id = e.schedule(10, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelledIdStaysDeadAfterSlotReuse) {
  // The generation tag must distinguish a recycled slot from the cancelled
  // event that used to occupy it.
  sim::Engine e;
  bool second_ran = false;
  auto id1 = e.schedule(10, [] {});
  EXPECT_TRUE(e.cancel(id1));
  auto id2 = e.schedule(20, [&] { second_ran = true; });  // may reuse id1's slot
  EXPECT_FALSE(e.cancel(id1));                            // stale id: dead forever
  e.run();
  EXPECT_TRUE(second_ran);
  EXPECT_FALSE(e.cancel(id2));  // fired
}

TEST(Engine, ManyCancellationsInterleavedWithReuse) {
  sim::Engine e;
  int ran = 0;
  std::vector<sim::EventId> ids;
  for (int round = 0; round < 50; ++round) {
    ids.clear();
    for (int i = 0; i < 20; ++i) {
      ids.push_back(e.schedule(static_cast<sim::TimePoint>(round * 100 + i), [&] { ++ran; }));
    }
    for (int i = 0; i < 20; i += 2) EXPECT_TRUE(e.cancel(ids[static_cast<std::size_t>(i)]));
  }
  e.run();
  EXPECT_EQ(ran, 50 * 10);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.eventsScheduled(), 1000u);
  EXPECT_EQ(e.eventsProcessed(), 500u);
}

TEST(Engine, CancelFromInsideCallback) {
  sim::Engine e;
  bool victim_ran = false;
  auto victim = e.schedule(20, [&] { victim_ran = true; });
  e.schedule(10, [&] { EXPECT_TRUE(e.cancel(victim)); });
  e.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, RunUntilSkipsCancelledHead) {
  sim::Engine e;
  int count = 0;
  auto head = e.schedule(10, [&] { ++count; });
  e.schedule(40, [&] { ++count; });
  EXPECT_TRUE(e.cancel(head));
  EXPECT_FALSE(e.runUntil(25));  // cancelled head must not fire nor advance past 25
  EXPECT_EQ(count, 0);
  EXPECT_EQ(e.now(), 25u);
  e.run();
  EXPECT_EQ(count, 1);
}

TEST(Engine, RunUntilStopsBeforeLaterEvents) {
  sim::Engine e;
  int count = 0;
  e.schedule(10, [&] { ++count; });
  e.schedule(20, [&] { ++count; });
  e.schedule(30, [&] { ++count; });
  EXPECT_FALSE(e.runUntil(25));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.now(), 25u);
  e.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, StopInterruptsRun) {
  sim::Engine e;
  int count = 0;
  e.schedule(10, [&] {
    ++count;
    e.stop();
  });
  e.schedule(20, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 1);
  e.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, RunUntilDrainedAdvancesClockToTarget) {
  // Epoch loops (the shard coordinator) read now() as "time consumed": the
  // drained path must advance the clock to the window boundary exactly like
  // the future-event path does.
  sim::Engine e;
  e.schedule(10, [] {});
  EXPECT_TRUE(e.runUntil(100));
  EXPECT_EQ(e.now(), 100u);
  // An entirely empty window advances the clock too.
  EXPECT_TRUE(e.runUntil(250));
  EXPECT_EQ(e.now(), 250u);
}

TEST(Engine, RunUntilNeverRewindsClock) {
  sim::Engine e;
  e.schedule(100, [] {});
  e.run();
  EXPECT_EQ(e.now(), 100u);
  EXPECT_TRUE(e.runUntil(50));  // drained, target in the past: clock untouched
  EXPECT_EQ(e.now(), 100u);
  e.schedule(200, [] {});
  EXPECT_FALSE(e.runUntil(50));  // future event beyond a past target
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, RunUntilAfterStopAgreesWithEmptyOnTombstoneOnlyHeap) {
  // stop() with only cancelled tombstones left must report "drained": the
  // heap is non-empty but holds no live work (live_events_ == 0).
  sim::Engine e;
  sim::EventId victim = 0;
  e.schedule(10, [&] {
    e.stop();
    EXPECT_TRUE(e.cancel(victim));
  });
  victim = e.schedule(20, [] { FAIL() << "cancelled event fired"; });
  EXPECT_TRUE(e.runUntil(100));
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.now(), 10u);  // stop path: clock stays at the last event
}

TEST(Engine, RunUntilStopWithLiveEventsReportsNotDrained) {
  sim::Engine e;
  e.schedule(10, [&] { e.stop(); });
  e.schedule(20, [] {});
  EXPECT_FALSE(e.runUntil(100));
  EXPECT_FALSE(e.empty());
  EXPECT_EQ(e.now(), 10u);
  EXPECT_TRUE(e.runUntil(100));
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, PendingStopIsHonoredByNextRunExactlyOnce) {
  // A stop() issued outside the run loop is a real request, not a no-op: the
  // next run call returns before processing anything, consuming the request;
  // the call after that proceeds normally.
  sim::Engine e;
  int ran = 0;
  e.schedule(10, [&] { ++ran; });
  e.stop();
  EXPECT_TRUE(e.stopRequested());
  e.run();
  EXPECT_EQ(ran, 0);
  EXPECT_FALSE(e.stopRequested());
  e.run();
  EXPECT_EQ(ran, 1);
}

TEST(Engine, PendingStopAppliesToRunUntilToo) {
  sim::Engine e;
  int ran = 0;
  e.schedule(10, [&] { ++ran; });
  e.stop();
  EXPECT_FALSE(e.runUntil(100));  // live event remains: not drained
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.runUntil(100));
  EXPECT_EQ(ran, 1);
}

TEST(Engine, CancelDuringRunUntilLeavesConsistentState) {
  sim::Engine e;
  int ran = 0;
  sim::EventId victim = e.schedule(30, [&] { ++ran; });
  e.schedule(10, [&] { EXPECT_TRUE(e.cancel(victim)); });
  e.schedule(20, [&] { ++ran; });
  EXPECT_TRUE(e.runUntil(50));  // tombstone at 30 is not live work
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.now(), 50u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, PastClampedCountsSilentClamps) {
  sim::Engine e;
  EXPECT_EQ(e.pastClamped(), 0u);
  sim::TimePoint fired_at = 0;
  e.schedule(100, [&] {
    e.schedule(10, [&] { fired_at = e.now(); });  // in the past: clamped + counted
  });
  e.run();
  EXPECT_EQ(fired_at, 100u);
  EXPECT_EQ(e.pastClamped(), 1u);
}

TEST(Engine, NextEventTimeSkipsTombstones) {
  sim::Engine e;
  EXPECT_EQ(e.nextEventTime(), sim::Engine::kNoEvent);
  auto a = e.schedule(10, [] {});
  e.schedule(30, [] {});
  EXPECT_EQ(e.nextEventTime(), 10u);
  EXPECT_TRUE(e.cancel(a));
  EXPECT_EQ(e.nextEventTime(), 30u);
  e.run();
  EXPECT_EQ(e.nextEventTime(), sim::Engine::kNoEvent);
}

TEST(Engine, ReentrantSchedulingFromCallback) {
  sim::Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.after(1, chain);
  };
  e.schedule(0, chain);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto trace = [] {
    sim::Engine e;
    sim::SplitMix64 rng(7);
    std::vector<sim::TimePoint> t;
    for (int i = 0; i < 200; ++i) {
      e.schedule(rng.below(1000), [&t, &e] { t.push_back(e.now()); });
    }
    e.run();
    return t;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(SmallFn, InlineAndHeapPathsBothInvoke) {
  struct Big {
    char pad[sim::SmallFn::kInlineCapacity + 8];
  };
  static_assert(sim::SmallFn::fitsInline<int*>());
  static_assert(!sim::SmallFn::fitsInline<Big[2]>());
  int small_hits = 0, big_hits = 0;
  sim::SmallFn small([&small_hits] { ++small_hits; });
  Big big{};
  big.pad[0] = 1;
  sim::SmallFn large([&big_hits, big] { big_hits += big.pad[0]; });
  small();
  small();
  large();
  EXPECT_EQ(small_hits, 2);
  EXPECT_EQ(big_hits, 1);
}

TEST(SmallFn, MoveTransfersOwnershipAndDestroys) {
  auto tracker = std::make_shared<int>(7);
  std::weak_ptr<int> alive = tracker;
  {
    sim::SmallFn a([tracker] {});
    tracker.reset();
    EXPECT_FALSE(alive.expired());
    sim::SmallFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_FALSE(alive.expired());
    b.reset();
    EXPECT_TRUE(alive.expired());
  }
}

TEST(SmallFn, HotUcxCaptureShapesStayInline) {
  // The completion-continuation shape (shared_ptr + std::function) and the
  // arrival shape (pointer + 120-byte message) must not allocate; this is
  // the engine hot path. If this fires after growing Worker::Incoming,
  // either shrink it or bump SmallFn::kInlineCapacity.
  struct Completion {
    std::shared_ptr<int> req;
    std::function<void(int&)> cb;
  };
  static_assert(sim::SmallFn::fitsInline<Completion>());
  struct Arrival {
    void* worker;
    std::uint64_t scalars[3];  // tag, len, src_ptr
    std::vector<std::byte> payload;
    std::shared_ptr<int> req;
    std::function<void(int&)> cb;
    std::shared_ptr<const std::vector<std::byte>> owner;
    int src_pe;
    bool flags[3];
  };
  static_assert(sim::SmallFn::fitsInline<Arrival>());
}

TEST(Time, UnitConversionsRoundTrip) {
  EXPECT_EQ(sim::usec(1.0), 1000u);
  EXPECT_EQ(sim::msec(1.0), 1000000u);
  EXPECT_DOUBLE_EQ(sim::toUs(sim::usec(12.5)), 12.5);
  EXPECT_EQ(sim::usec(0.0), 0u);
  EXPECT_EQ(sim::usec(-5.0), 0u);
}

TEST(Time, TransferTimeMatchesBandwidth) {
  // 1 GB at 1 GB/s = 1 second = 1e9 ns.
  EXPECT_EQ(sim::transferTime(1'000'000'000, 1.0), 1'000'000'000u);
  // 4 MB at 50 GB/s = 80 us.
  EXPECT_NEAR(sim::toUs(sim::transferTime(4u << 20, 50.0)), 83.89, 0.1);
  EXPECT_EQ(sim::transferTime(0, 50.0), 0u);
}

TEST(Future, CallbackFiresOnSet) {
  sim::Promise<int> p;
  int seen = 0;
  p.future().onReady([&](const int& v) { seen = v; });
  EXPECT_FALSE(p.ready());
  p.set(42);
  EXPECT_EQ(seen, 42);
  EXPECT_TRUE(p.ready());
}

TEST(Future, CallbackAfterReadyFiresImmediately) {
  sim::Promise<void> p;
  p.set();
  bool seen = false;
  p.future().onReady([&] { seen = true; });
  EXPECT_TRUE(seen);
}

TEST(Future, AllOfWaitsForEveryInput) {
  std::vector<sim::Promise<void>> ps(5);
  std::vector<sim::Future<void>> fs;
  for (auto& p : ps) fs.push_back(p.future());
  auto all = sim::allOf(fs);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_FALSE(all.ready());
    ps[i].set();
  }
  EXPECT_TRUE(all.ready());
}

TEST(Future, AllOfEmptyIsImmediatelyReady) {
  EXPECT_TRUE(sim::allOf({}).ready());
}

sim::SimTask sleepTask(sim::Engine& e, sim::TimePoint& woke) {
  co_await sim::delay(e, sim::usec(5));
  woke = e.now();
}

TEST(Coroutine, DelayResumesAtRightTime) {
  sim::Engine e;
  sim::TimePoint woke = 0;
  (void)sleepTask(e, woke);
  e.run();
  EXPECT_EQ(woke, sim::usec(5));
}

sim::SimTask awaitFutureTask(sim::Future<int> f, int& out) {
  out = co_await f;
}

TEST(Coroutine, AwaitFutureSuspendsUntilSet) {
  sim::Engine e;
  sim::Promise<int> p;
  int out = 0;
  (void)awaitFutureTask(p.future(), out);
  EXPECT_EQ(out, 0);
  e.schedule(100, [&] { p.set(7); });
  e.run();
  EXPECT_EQ(out, 7);
}

sim::FutureTask chainTask(sim::Engine& e) {
  co_await sim::delay(e, 10);
  co_await sim::delay(e, 10);
}

TEST(Coroutine, FutureTaskCompletionObservable) {
  sim::Engine e;
  auto t = chainTask(e);
  EXPECT_FALSE(t.future().ready());
  e.run();
  EXPECT_TRUE(t.future().ready());
  EXPECT_EQ(e.now(), 20u);
}

sim::FutureTask nestedInner(sim::Engine& e) { co_await sim::delay(e, 30); }
sim::FutureTask nestedOuter(sim::Engine& e, sim::TimePoint& done) {
  co_await nestedInner(e);
  done = e.now();
}

TEST(Coroutine, TasksCompose) {
  sim::Engine e;
  sim::TimePoint done = 0;
  auto t = nestedOuter(e, done);
  e.run();
  EXPECT_EQ(done, 30u);
  EXPECT_TRUE(t.future().ready());
}

TEST(Rng, DeterministicStream) {
  sim::SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BetweenStaysInRange) {
  sim::SplitMix64 r(99);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.between(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, FillIsReproducible) {
  sim::SplitMix64 a(5), b(5);
  std::vector<unsigned char> x(37), y(37);
  a.fill(x.data(), x.size());
  b.fill(y.data(), y.size());
  EXPECT_EQ(x, y);
}

}  // namespace
