#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "apps/jacobi/jacobi.hpp"
#include "apps/osu/osu.hpp"
#include "converse/converse.hpp"
#include "core/device_comm.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"
#include "ucx/context.hpp"

/// Fault injection and the retry/fallback reliability layer.
///
/// The deterministic injector lets these tests assert *exact* counter values
/// for engineered fault patterns (certain loss, link flaps, over-eager
/// retransmission), and fixed seeds make the probabilistic runs (10% loss
/// through the full Charm++/AMPI/Charm4py stacks) reproducible.

namespace {

using namespace cux;

struct FaultFixture {
  explicit FaultFixture(const sim::FaultConfig& fault, int nodes = 2, int max_retries = -1,
                        double retry_base_us = -1.0)
      : m(model::summit(nodes)) {
    m.machine.fault = fault;
    if (max_retries >= 0) m.ucx.max_retries = max_retries;
    if (retry_base_us > 0) m.ucx.retry_base_us = retry_base_us;
    sys = std::make_unique<hw::System>(m.machine);
    sys->trace.enable();
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    cmi = std::make_unique<cmi::Converse>(*sys, *ctx, m.costs);
    dev = std::make_unique<core::DeviceComm>(*cmi);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<cmi::Converse> cmi;
  std::unique_ptr<core::DeviceComm> dev;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  sim::SplitMix64 rng(seed);
  rng.fill(v.data(), n);
  return v;
}

// --------------------------------------------------------------------------
// FaultInjector unit behaviour
// --------------------------------------------------------------------------

TEST(FaultInjector, DisabledMakesNoDecisionsAndNeverDrops) {
  sim::FaultInjector inj;
  sim::FaultConfig cfg;  // enabled == false, but knobs configured
  cfg.setAllClasses(sim::FaultPolicy{1.0, 100.0});
  cfg.down_windows.push_back(sim::LinkDownWindow{0, sim::sec(1.0), -1, -1});
  inj.configure(cfg);
  for (int i = 0; i < 100; ++i) {
    const auto d = inj.decide(static_cast<sim::TimePoint>(i), sim::MsgClass::Eager, 0, 1);
    EXPECT_FALSE(d.drop);
    EXPECT_EQ(d.delay, 0u);
  }
  EXPECT_EQ(inj.decisions(), 0u);
  EXPECT_EQ(inj.dropsInjected(), 0u);
}

TEST(FaultInjector, CertainDropDropsEveryMessageOfItsClassOnly) {
  sim::FaultInjector inj;
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.policy[static_cast<std::size_t>(sim::MsgClass::RndvData)].drop_prob = 1.0;
  inj.configure(cfg);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(inj.decide(0, sim::MsgClass::RndvData, 0, 1).drop);
    EXPECT_FALSE(inj.decide(0, sim::MsgClass::Eager, 0, 1).drop);
  }
  EXPECT_EQ(inj.decisions(), 100u);
  EXPECT_EQ(inj.dropsInjected(), 50u);
}

TEST(FaultInjector, DropRateConvergesToConfiguredProbability) {
  sim::FaultInjector inj;
  inj.configure(sim::FaultConfig::uniformLoss(0.1, 99));
  int drops = 0;
  for (int i = 0; i < 10000; ++i) {
    if (inj.decide(0, sim::MsgClass::Am, 0, 1).drop) ++drops;
  }
  EXPECT_GT(drops, 800);
  EXPECT_LT(drops, 1200);
}

TEST(FaultInjector, LinkDownWindowsAreDirectionalAndTimeBounded) {
  sim::FaultInjector inj;
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.down_windows.push_back(sim::LinkDownWindow{100, 200, 0, 6});   // 0 -> 6 only
  cfg.down_windows.push_back(sim::LinkDownWindow{300, 400, -1, 2});  // anyone -> 2
  inj.configure(cfg);
  EXPECT_FALSE(inj.linkDown(99, 0, 6));
  EXPECT_TRUE(inj.linkDown(100, 0, 6));
  EXPECT_TRUE(inj.linkDown(199, 0, 6));
  EXPECT_FALSE(inj.linkDown(200, 0, 6));  // half-open interval
  EXPECT_FALSE(inj.linkDown(150, 6, 0));  // reverse direction unaffected
  EXPECT_TRUE(inj.linkDown(350, 5, 2));   // wildcard source
  EXPECT_FALSE(inj.linkDown(350, 2, 5));
  // Messages during the window are dropped without consuming randomness.
  EXPECT_TRUE(inj.decide(150, sim::MsgClass::Eager, 0, 6).drop);
}

TEST(FaultInjector, SameSeedSameDecisionStream) {
  sim::FaultInjector a, b;
  a.configure(sim::FaultConfig::uniformLoss(0.3, 1234));
  b.configure(sim::FaultConfig::uniformLoss(0.3, 1234));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.decide(0, sim::MsgClass::Eager, 0, 1).drop,
              b.decide(0, sim::MsgClass::Eager, 0, 1).drop);
  }
}

// --------------------------------------------------------------------------
// Retry state machine (exact, engineered fault patterns)
// --------------------------------------------------------------------------

TEST(FaultRetry, ExhaustionSurfacesErrorWithExactCounters) {
  // Certain loss, max_retries = 2: exactly 3 attempts (original + 2), all
  // dropped, then ReqState::Error through the completion callback. Nothing
  // hangs: the engine drains with the receive still pending.
  FaultFixture f(sim::FaultConfig::uniformLoss(1.0, 7), 2, /*max_retries=*/2);
  auto src = pattern(64, 1);
  std::vector<std::byte> dst(64);
  bool recv_done = false;
  f.ctx->worker(1).tagRecv(dst.data(), 64, 0x1, ucx::kFullMask,
                           [&](ucx::Request&) { recv_done = true; });
  int send_completions = 0;
  auto req = f.ctx->tagSend(0, 1, src.data(), 64, 0x1, [&](ucx::Request& r) {
    ++send_completions;
    EXPECT_TRUE(r.failed());
  });
  f.sys->engine.run();
  EXPECT_EQ(send_completions, 1);
  EXPECT_TRUE(req->failed());
  EXPECT_FALSE(recv_done);
  EXPECT_EQ(f.sys->fault.decisions(), 3u);
  EXPECT_EQ(f.sys->fault.dropsInjected(), 3u);
  EXPECT_EQ(f.ctx->retransmits(), 2u);
  EXPECT_EQ(f.ctx->sendErrors(), 1u);
  EXPECT_EQ(f.sys->trace.count(sim::TraceCat::Retry), 2u);
}

TEST(FaultRetry, PartialLossRecoversWithRetransmissions) {
  // 30% loss, default retry budget: every message must still arrive intact
  // (failure needs 6 consecutive losses, p ~ 7e-4 per message; the fixed
  // seed makes the outcome reproducible either way, and this seed passes).
  FaultFixture f(sim::FaultConfig::uniformLoss(0.3, 0xBEEF));
  constexpr int kMsgs = 20;
  std::vector<std::vector<std::byte>> srcs, dsts;
  int done = 0;
  for (int i = 0; i < kMsgs; ++i) {
    srcs.push_back(pattern(256, 100 + static_cast<std::uint64_t>(i)));
    dsts.emplace_back(256);
  }
  for (int i = 0; i < kMsgs; ++i) {
    const auto tag = static_cast<ucx::Tag>(i);
    const int dst_pe = (i % 2 == 0) ? 1 : 6;  // intra- and inter-node
    f.ctx->worker(dst_pe).tagRecv(dsts[static_cast<std::size_t>(i)].data(), 256, tag,
                                  ucx::kFullMask, [&](ucx::Request& r) {
                                    EXPECT_TRUE(r.done());
                                    ++done;
                                  });
    f.ctx->tagSend(0, dst_pe, srcs[static_cast<std::size_t>(i)].data(), 256, tag, {});
  }
  f.sys->engine.run();
  EXPECT_EQ(done, kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(dsts[static_cast<std::size_t>(i)], srcs[static_cast<std::size_t>(i)]) << i;
  }
  // At 30% loss over 20+ wire messages, some retransmissions must happen.
  EXPECT_GT(f.ctx->retransmits(), 0u);
  EXPECT_EQ(f.ctx->sendErrors(), 0u);
}

TEST(FaultRetry, DuplicatesFromOverEagerRetransmitAreSuppressed) {
  // No loss at all, but a retry deadline (1 ns) far below the wire flight
  // time: every attempt is retransmitted, all max_retries + 1 copies arrive,
  // and the receiver's sequence filter must keep exactly one.
  sim::FaultConfig fc;
  fc.enabled = true;  // zero drop probability, zero jitter
  FaultFixture f(fc, 2, /*max_retries=*/5, /*retry_base_us=*/0.001);
  auto src = pattern(128, 3);
  std::vector<std::byte> dst(128);
  int recv_completions = 0;
  f.ctx->worker(6).tagRecv(dst.data(), 128, 0x2, ucx::kFullMask,
                           [&](ucx::Request&) { ++recv_completions; });
  auto req = f.ctx->tagSend(0, 6, src.data(), 128, 0x2, {});
  f.sys->engine.run();
  EXPECT_EQ(recv_completions, 1);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.ctx->retransmits(), 5u);
  EXPECT_EQ(f.ctx->worker(6).duplicatesSuppressed(), 5u);
  EXPECT_EQ(f.ctx->duplicatesSuppressed(), 5u);
  // All deadlines fired before the first copy landed, so the sender
  // (spuriously but safely) reported Error — exactly once.
  EXPECT_TRUE(req->failed());
  EXPECT_EQ(f.ctx->sendErrors(), 1u);
}

TEST(FaultRetry, UnexpectedQueueStaysBoundedUnderDuplicateStorm) {
  // Same over-eager retransmit setup, but nothing is posted: every copy
  // lands in the unexpected queue. Without the dedup filter the queue would
  // hold (max_retries + 1) * kMsgs entries; with it, at most kMsgs.
  sim::FaultConfig fc;
  fc.enabled = true;
  FaultFixture f(fc, 2, /*max_retries=*/5, /*retry_base_us=*/0.001);
  constexpr int kMsgs = 16;
  // A tag-type nibble no runtime registers a handler for, so unmatched
  // arrivals queue as unexpected instead of dispatching into Converse.
  constexpr ucx::Tag kRawType = ucx::Tag{0xF} << 60;
  std::vector<std::vector<std::byte>> srcs;
  for (int i = 0; i < kMsgs; ++i) {
    srcs.push_back(pattern(64, 40 + static_cast<std::uint64_t>(i)));
    f.ctx->tagSend(0, 6, srcs.back().data(), 64, kRawType | static_cast<ucx::Tag>(0x50 + i), {});
  }
  f.sys->engine.run();
  EXPECT_EQ(f.ctx->worker(6).unexpectedCount(), static_cast<std::size_t>(kMsgs));
  EXPECT_LE(f.ctx->worker(6).unexpectedHighWatermark(), static_cast<std::size_t>(kMsgs));
  EXPECT_EQ(f.ctx->worker(6).duplicatesSuppressed(), 5u * kMsgs);
  // Late receives still drain the queue correctly.
  std::vector<std::byte> dst(64);
  bool got = false;
  f.ctx->worker(6).tagRecv(dst.data(), 64, kRawType | 0x50, ucx::kFullMask,
                           [&](ucx::Request&) { got = true; });
  f.sys->engine.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(dst, srcs[0]);
}

TEST(FaultRetry, JitterDelaysDeliveryWithoutLoss) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.setAllClasses(sim::FaultPolicy{0.0, 30.0});  // jitter only
  FaultFixture f(fc);
  auto src = pattern(64, 5);
  std::vector<std::byte> dst(64);
  bool done = false;
  f.ctx->worker(1).tagRecv(dst.data(), 64, 0x3, ucx::kFullMask,
                           [&](ucx::Request&) { done = true; });
  f.ctx->tagSend(0, 1, src.data(), 64, 0x3, {});
  f.sys->engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dst, src);
  EXPECT_GE(f.sys->fault.delaysInjected(), 1u);
  EXPECT_EQ(f.ctx->sendErrors(), 0u);
}

TEST(FaultRetry, LinkFlapRecoversByRetransmittingPastTheWindow) {
  // Link 0 -> 6 down for the first 120 us. Attempt 0 (~0.3 us) and attempt 1
  // (~50 us) fall inside the window and are dropped without consuming
  // randomness; attempt 2 (~150 us) goes through.
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.down_windows.push_back(sim::LinkDownWindow{0, sim::usec(120.0), 0, 6});
  FaultFixture f(fc);
  auto src = pattern(64, 6);
  std::vector<std::byte> dst(64);
  bool done = false;
  f.ctx->worker(6).tagRecv(dst.data(), 64, 0x4, ucx::kFullMask,
                           [&](ucx::Request&) { done = true; });
  auto req = f.ctx->tagSend(0, 6, src.data(), 64, 0x4, {});
  f.sys->engine.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(req->done());
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.ctx->retransmits(), 2u);
  EXPECT_EQ(f.sys->fault.dropsInjected(), 2u);
  EXPECT_GT(f.sys->now(), sim::usec(120.0));
}

TEST(FaultRetry, RendezvousDataLossFailsBothSidesTerminally) {
  // Kill the rendezvous data leg outright: the sender must complete with
  // Error AND the matched receive must fail too — neither side hangs.
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.policy[static_cast<std::size_t>(sim::MsgClass::RndvData)].drop_prob = 1.0;
  FaultFixture f(fc, 2, /*max_retries=*/2, /*retry_base_us=*/5.0);
  auto src = pattern(64 * 1024, 8);  // > host_eager_threshold: rendezvous
  std::vector<std::byte> dst(64 * 1024);
  bool recv_completed = false;
  ucx::RequestPtr recv_req;
  recv_req = f.ctx->worker(6).tagRecv(dst.data(), dst.size(), 0x5, ucx::kFullMask,
                                      [&](ucx::Request& r) {
                                        recv_completed = true;
                                        EXPECT_TRUE(r.failed());
                                      });
  bool send_completed = false;
  auto req = f.ctx->tagSend(0, 6, src.data(), src.size(), 0x5, [&](ucx::Request& r) {
    send_completed = true;
    EXPECT_TRUE(r.failed());
  });
  f.sys->engine.run();
  EXPECT_TRUE(send_completed);
  EXPECT_TRUE(recv_completed);
  EXPECT_TRUE(req->failed());
  EXPECT_TRUE(recv_req->failed());
  EXPECT_GE(f.ctx->sendErrors(), 1u);
}

// --------------------------------------------------------------------------
// DeviceComm graceful degradation
// --------------------------------------------------------------------------

TEST(FaultFallback, DeviceRndvExhaustionFallsBackToHostStagedEager) {
  // 8 KB device buffer: above device_eager_threshold (4 KB) so the GPU-aware
  // path goes rendezvous — whose control leg we kill — but at the
  // host_eager_threshold (8 KB), so the host-staged fallback ships it as a
  // clean eager message. The pre-posted receive matches either route (same
  // tag), so the transfer recovers with the data intact.
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.policy[static_cast<std::size_t>(sim::MsgClass::RndvCtrl)].drop_prob = 1.0;
  FaultFixture f(fc, 2, /*max_retries=*/1, /*retry_base_us=*/5.0);
  cuda::DeviceBuffer src(*f.sys, 0, 8192, true), dst(*f.sys, 6, 8192, true);
  const auto ref = pattern(8192, 9);
  std::memcpy(src.get(), ref.data(), ref.size());

  core::CmiDeviceBuffer buf{src.get(), 8192, 0};
  bool sent = false, recvd = false;
  f.cmi->runOn(0, [&] {
    f.dev->lrtsSendDevice(0, 6, buf, [&] { sent = true; }, core::DeviceRecvType::Charm);
    f.cmi->runOn(6, [&] {
      f.dev->lrtsRecvDevice(6, core::DeviceRdmaOp{dst.get(), 8192, buf.tag},
                            core::DeviceRecvType::Charm, [&] { recvd = true; });
    });
  });
  f.sys->engine.run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(recvd);
  EXPECT_EQ(f.dev->fallbacks(), 1u);
  EXPECT_EQ(f.sys->trace.count(sim::TraceCat::Fallback), 1u);
  EXPECT_EQ(std::memcmp(dst.get(), ref.data(), ref.size()), 0);
}

TEST(FaultFallback, LinkDownAtIssueTimeSkipsStraightToFallback) {
  // The outage covers the issue instant, so issueSend degrades immediately
  // instead of burning the retry budget; the fallback's own eager attempts
  // retransmit past the end of the window and deliver.
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.down_windows.push_back(sim::LinkDownWindow{0, sim::usec(100.0), 0, 6});
  FaultFixture f(fc);
  cuda::DeviceBuffer src(*f.sys, 0, 2048, true), dst(*f.sys, 6, 2048, true);
  const auto ref = pattern(2048, 10);
  std::memcpy(src.get(), ref.data(), ref.size());

  core::CmiDeviceBuffer buf{src.get(), 2048, 0};
  bool sent = false, recvd = false;
  f.cmi->runOn(0, [&] {
    f.dev->lrtsSendDevice(0, 6, buf, [&] { sent = true; }, core::DeviceRecvType::Ampi);
    f.cmi->runOn(6, [&] {
      f.dev->lrtsRecvDevice(6, core::DeviceRdmaOp{dst.get(), 2048, buf.tag},
                            core::DeviceRecvType::Ampi, [&] { recvd = true; });
    });
  });
  f.sys->engine.run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(recvd);
  EXPECT_EQ(f.dev->fallbacks(), 1u);
  EXPECT_EQ(std::memcmp(dst.get(), ref.data(), ref.size()), 0);
  EXPECT_EQ(f.dev->sendsByType(core::DeviceRecvType::Ampi), 1u);
  EXPECT_EQ(f.dev->recvsByType(core::DeviceRecvType::Ampi), 1u);
}

TEST(FaultFallback, MatchedRndvExhaustionRepostsReceiveAndRecovers) {
  // Kill only the rendezvous *data* leg: the RTS is delivered, the posted
  // receive matches, then the transfer fails terminally on both sides. The
  // receiver must NOT report completion (its buffer was never written) —
  // it re-posts under the same tag so the sender's host-staged fallback
  // still finds a match, and on_complete fires only when the data has
  // actually arrived.
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.policy[static_cast<std::size_t>(sim::MsgClass::RndvData)].drop_prob = 1.0;
  FaultFixture f(fc, 2, /*max_retries=*/1, /*retry_base_us=*/5.0);
  cuda::DeviceBuffer src(*f.sys, 0, 8192, true), dst(*f.sys, 6, 8192, true);
  const auto ref = pattern(8192, 12);
  std::memcpy(src.get(), ref.data(), ref.size());

  core::CmiDeviceBuffer buf{src.get(), 8192, 0};
  int sent = 0, recvd = 0;
  f.cmi->runOn(0, [&] {
    f.dev->lrtsSendDevice(0, 6, buf, [&] { ++sent; }, core::DeviceRecvType::Charm);
    f.cmi->runOn(6, [&] {
      f.dev->lrtsRecvDevice(6, core::DeviceRdmaOp{dst.get(), 8192, buf.tag},
                            core::DeviceRecvType::Charm, [&] { ++recvd; });
    });
  });
  f.sys->engine.run();
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(recvd, 1);
  EXPECT_EQ(f.dev->fallbacks(), 1u);
  EXPECT_EQ(f.dev->recvReposts(), 1u);
  EXPECT_EQ(f.dev->acksLost(), 0u);
  // The recovered data is intact, and the fallback message did not rot in
  // the unexpected queue (it matched the re-posted receive).
  EXPECT_EQ(std::memcmp(dst.get(), ref.data(), ref.size()), 0);
  EXPECT_EQ(f.ctx->worker(6).unexpectedCount(), 0u);
}

TEST(FaultFallback, AtsLossCompletesSendWithoutSpuriousResend) {
  // Intra-node device rendezvous with the receiver->sender direction dead:
  // the data leg (direct NVLink pull) succeeds and the receiver completes
  // Done, but every ATS attempt is lost — the sender sees ReqState::Error
  // with data_delivered set. The receive is already consumed, so a fallback
  // resend could never match again: DeviceComm must suppress it (no leaked
  // unexpected-queue entry, no double-charged bandwidth) and complete.
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.down_windows.push_back(sim::LinkDownWindow{0, sim::sec(1.0), 1, 0});
  FaultFixture f(fc, 2, /*max_retries=*/2, /*retry_base_us=*/5.0);
  cuda::DeviceBuffer src(*f.sys, 0, 8192, true), dst(*f.sys, 1, 8192, true);
  const auto ref = pattern(8192, 13);
  std::memcpy(src.get(), ref.data(), ref.size());

  core::CmiDeviceBuffer buf{src.get(), 8192, 0};
  int sent = 0, recvd = 0;
  f.cmi->runOn(0, [&] {
    f.dev->lrtsSendDevice(0, 1, buf, [&] { ++sent; }, core::DeviceRecvType::Charm);
    f.cmi->runOn(1, [&] {
      f.dev->lrtsRecvDevice(1, core::DeviceRdmaOp{dst.get(), 8192, buf.tag},
                            core::DeviceRecvType::Charm, [&] { ++recvd; });
    });
  });
  f.sys->engine.run();
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(recvd, 1);
  EXPECT_EQ(std::memcmp(dst.get(), ref.data(), ref.size()), 0);
  EXPECT_EQ(f.dev->acksLost(), 1u);
  EXPECT_EQ(f.dev->fallbacks(), 0u);
  EXPECT_EQ(f.dev->recvReposts(), 0u);
  EXPECT_GE(f.ctx->sendErrors(), 1u);
  EXPECT_EQ(f.ctx->worker(1).unexpectedCount(), 0u);
}

TEST(FaultFallback, UserTagPrePostedPathSurvivesLoss) {
  // The user-tag improvement pre-posts the receive before any metadata
  // exchange; under 10% uniform loss the transfer must still complete and
  // verify (retries recover lost legs; the pre-posted receive is oblivious).
  FaultFixture f(sim::FaultConfig::uniformLoss(0.1, 0xCAFE));
  cuda::DeviceBuffer src(*f.sys, 0, 32768, true), dst(*f.sys, 6, 32768, true);
  const auto ref = pattern(32768, 11);
  std::memcpy(src.get(), ref.data(), ref.size());

  bool sent = false, recvd = false;
  f.cmi->runOn(6, [&] {
    f.dev->lrtsRecvDeviceUserTag(6, dst.get(), 32768, 0x77, core::DeviceRecvType::Charm4py,
                                 [&] { recvd = true; });
    f.cmi->runOn(0, [&] {
      core::CmiDeviceBuffer buf{src.get(), 32768, 0};
      f.dev->lrtsSendDeviceUserTag(0, 6, buf, 0x77, [&] { sent = true; },
                                   core::DeviceRecvType::Charm4py);
    });
  });
  f.sys->engine.run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(recvd);
  EXPECT_EQ(std::memcmp(dst.get(), ref.data(), ref.size()), 0);
}

// --------------------------------------------------------------------------
// Determinism of faulty timelines
// --------------------------------------------------------------------------

std::uint64_t faultyTimelineHash(std::uint64_t seed) {
  FaultFixture f(sim::FaultConfig::uniformLoss(0.2, seed));
  std::vector<std::vector<std::byte>> srcs, dsts;
  for (int i = 0; i < 12; ++i) {
    srcs.push_back(pattern(1024, static_cast<std::uint64_t>(i)));
    dsts.emplace_back(1024);
    const auto tag = static_cast<ucx::Tag>(0x30 + i);
    const int dst_pe = (i % 3 == 0) ? 6 : 1;
    f.ctx->worker(dst_pe).tagRecv(dsts.back().data(), 1024, tag, ucx::kFullMask, {});
    f.ctx->tagSend(0, dst_pe, srcs.back().data(), 1024, tag, {});
  }
  f.sys->engine.run();
  return f.sys->trace.hash();
}

TEST(FaultDeterminism, SameSeedSameTimelineDifferentSeedDifferentTimeline) {
  EXPECT_EQ(faultyTimelineHash(21), faultyTimelineHash(21));
  EXPECT_NE(faultyTimelineHash(21), faultyTimelineHash(22));
}

// --------------------------------------------------------------------------
// Full application stacks under loss
// --------------------------------------------------------------------------

class FaultStack : public ::testing::TestWithParam<osu::Stack> {};

TEST_P(FaultStack, OsuPingPongCompletesAt10PercentLoss) {
  osu::BenchConfig clean;
  clean.stack = GetParam();
  clean.mode = osu::Mode::Device;
  clean.place = osu::Placement::InterNode;
  clean.iters = 10;
  clean.warmup = 2;
  osu::BenchConfig faulty = clean;
  faulty.model.machine.fault = sim::FaultConfig::uniformLoss(0.1, 0xFA11);

  const double base_us = osu::latencyPoint(clean, 4096);
  const double lossy_us = osu::latencyPoint(faulty, 4096);
  // Completion (a hang would drain the engine early and report 0), and loss
  // can only cost time, never save it.
  ASSERT_GT(base_us, 0.0);
  ASSERT_GT(lossy_us, 0.0);
  EXPECT_GE(lossy_us, base_us);
}

TEST_P(FaultStack, JacobiVerifiesAt10PercentLoss) {
  jacobi::JacobiConfig cfg;
  cfg.stack = GetParam();
  cfg.mode = jacobi::Mode::Device;
  cfg.nodes = 2;
  cfg.grid = {24, 12, 6};  // 12 blocks: inter-node halos
  cfg.iters = 2;
  cfg.warmup = 0;
  cfg.backed = true;
  cfg.model.machine.fault = sim::FaultConfig::uniformLoss(0.1, 0x1ACB);

  const auto got = jacobi::runJacobiVerified(cfg);
  const auto ref = jacobi::referenceJacobi(cfg.grid, cfg.iters);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_DOUBLE_EQ(got[i], ref[i]) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Stacks, FaultStack,
                         ::testing::Values(osu::Stack::Charm, osu::Stack::Ampi,
                                           osu::Stack::Charm4py),
                         [](const ::testing::TestParamInfo<osu::Stack>& info) {
                           switch (info.param) {
                             case osu::Stack::Charm: return "Charm";
                             case osu::Stack::Ampi: return "Ampi";
                             case osu::Stack::Charm4py: return "Charm4py";
                             default: return "Other";
                           }
                         });

}  // namespace
