#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/particles/particles.hpp"

namespace {

using namespace cux;
using namespace cux::particles;

TEST(ParticlesGeometry, ProcessorGridAsSquareAsPossible) {
  int px = 0, py = 0;
  processorGrid(6, px, py);
  EXPECT_EQ(px * py, 6);
  EXPECT_EQ(px, 2);
  EXPECT_EQ(py, 3);
  processorGrid(12, px, py);
  EXPECT_EQ(px, 3);
  EXPECT_EQ(py, 4);
  processorGrid(7, px, py);  // prime
  EXPECT_EQ(px, 1);
  EXPECT_EQ(py, 7);
}

TEST(ParticlesInit, DeterministicAndInsidePatch) {
  for (std::uint64_t id : {0ull, 17ull, 123456ull}) {
    const Particle a = initialParticle(id, 0.25, 0.5, 0.25, 0.5);
    const Particle b = initialParticle(id, 0.25, 0.5, 0.25, 0.5);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.vy, b.vy);
    EXPECT_GE(a.x, 0.25);
    EXPECT_LT(a.x, 0.5);
    EXPECT_GE(a.y, 0.5);
    EXPECT_LT(a.y, 1.0);
    EXPECT_GE(a.vx, -1.0);
    EXPECT_LT(a.vx, 1.0);
  }
}

struct VerifyParam {
  Mode mode;
  int nodes;
  int steps;
  std::uint64_t per_rank;
};

class ParticlesVerify : public ::testing::TestWithParam<VerifyParam> {};

TEST_P(ParticlesVerify, TrajectoriesMatchSerialReference) {
  const auto p = GetParam();
  ParticlesConfig cfg;
  cfg.nodes = p.nodes;
  cfg.particles_per_rank = p.per_rank;
  cfg.steps = p.steps;
  cfg.warmup = 0;
  cfg.mode = p.mode;
  cfg.backed = true;
  int px = 0, py = 0;
  processorGrid(6 * p.nodes, px, py);
  const auto ref = referenceParticles(cfg, px, py);
  const auto got = runParticlesVerified(cfg);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(got[i].id, ref[i].id);
    ASSERT_DOUBLE_EQ(got[i].x, ref[i].x) << "particle " << ref[i].id;
    ASSERT_DOUBLE_EQ(got[i].y, ref[i].y) << "particle " << ref[i].id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Runs, ParticlesVerify,
    ::testing::Values(VerifyParam{Mode::Device, 1, 5, 400},
                      VerifyParam{Mode::HostStaging, 1, 5, 400},
                      VerifyParam{Mode::Device, 2, 8, 250},       // inter-node migration
                      VerifyParam{Mode::HostStaging, 2, 3, 250}),
    [](const ::testing::TestParamInfo<VerifyParam>& info) {
      const auto& p = info.param;
      return std::string(p.mode == Mode::Device ? "device" : "host") + "_n" +
             std::to_string(p.nodes) + "_s" + std::to_string(p.steps);
    });

TEST(ParticlesConservation, NoParticleLostOverManySteps) {
  ParticlesConfig cfg;
  cfg.nodes = 1;
  cfg.particles_per_rank = 300;
  cfg.steps = 25;  // many migrations
  cfg.warmup = 0;
  cfg.backed = true;
  const auto got = runParticlesVerified(cfg);
  EXPECT_EQ(got.size(), 6u * 300u);
  // All ids present exactly once (sorted by id already).
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].id, i);
}

TEST(ParticlesTiming, DeviceCommBeatsHostStaging) {
  auto run = [](Mode m) {
    ParticlesConfig cfg;
    cfg.nodes = 2;
    cfg.particles_per_rank = 1'000'000;
    cfg.steps = 4;
    cfg.warmup = 1;
    cfg.mode = m;
    cfg.backed = false;
    return runParticles(cfg);
  };
  const auto h = run(Mode::HostStaging);
  const auto d = run(Mode::Device);
  EXPECT_GT(h.comm_ms_per_step / d.comm_ms_per_step, 1.5);
  EXPECT_LT(d.overall_ms_per_step, h.overall_ms_per_step);
  EXPECT_GT(d.avg_migrants_per_rank_step, 0.0);
}

TEST(ParticlesTiming, MigrationVolumeScalesWithDt) {
  auto migrants = [](double dt) {
    ParticlesConfig cfg;
    cfg.nodes = 1;
    cfg.particles_per_rank = 100000;
    cfg.steps = 3;
    cfg.warmup = 0;
    cfg.backed = false;
    cfg.dt = dt;
    return runParticles(cfg).avg_migrants_per_rank_step;
  };
  EXPECT_GT(migrants(0.4), 1.5 * migrants(0.1));
}

}  // namespace
