#include <gtest/gtest.h>

#include <cmath>

#include "apps/jacobi/block.hpp"
#include "apps/jacobi/jacobi.hpp"

namespace {

using namespace cux;
using namespace cux::jacobi;

// --------------------------------------------------------------------------
// Geometry
// --------------------------------------------------------------------------

TEST(JacobiGeometry, DecompositionCoversAllBlocks) {
  auto d = decompose({128, 128, 128}, 6);
  EXPECT_EQ(d.numBlocks(), 6);
  EXPECT_EQ(d.procs.x * d.procs.y * d.procs.z, 6);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(d.idOf(d.coordOf(i)), i);
}

TEST(JacobiGeometry, MinimisesSurface) {
  // For a cube over 8 blocks, 2x2x2 is optimal.
  auto d = decompose({256, 256, 256}, 8);
  EXPECT_EQ(d.procs.x, 2);
  EXPECT_EQ(d.procs.y, 2);
  EXPECT_EQ(d.procs.z, 2);
}

TEST(JacobiGeometry, ElongatedGridGetsElongatedProcs) {
  // A grid long in z should be cut along z.
  auto d = decompose({64, 64, 1024}, 4);
  EXPECT_EQ(d.procs.z, 4);
}

TEST(JacobiGeometry, NeighborsSymmetric) {
  auto d = decompose({96, 96, 96}, 12);
  for (int id = 0; id < d.numBlocks(); ++id) {
    for (int di = 0; di < kNumDirs; ++di) {
      const int n = d.neighbor(id, static_cast<Dir>(di));
      if (n < 0) continue;
      EXPECT_EQ(d.neighbor(n, opposite(static_cast<Dir>(di))), id);
    }
  }
}

TEST(JacobiGeometry, BoundaryBlocksHaveNoOutsideNeighbors) {
  auto d = decompose({64, 64, 64}, 8);  // 2x2x2
  // Corner block 0 has exactly 3 neighbours.
  int n = 0;
  for (int di = 0; di < kNumDirs; ++di) {
    if (d.neighbor(0, static_cast<Dir>(di)) >= 0) ++n;
  }
  EXPECT_EQ(n, 3);
}

TEST(JacobiGeometry, FaceBytesMatchBlockDims) {
  auto d = decompose({120, 60, 30}, 1);
  EXPECT_EQ(d.faceBytes(Dir::XPlus), 60u * 30 * 8);
  EXPECT_EQ(d.faceBytes(Dir::YPlus), 120u * 30 * 8);
  EXPECT_EQ(d.faceBytes(Dir::ZPlus), 120u * 60 * 8);
}

TEST(JacobiGeometry, WeakScalingDoublesInXyzOrder) {
  const Vec3 base{100, 100, 100};
  EXPECT_EQ(weakScaledGrid(base, 0), (Vec3{100, 100, 100}));
  EXPECT_EQ(weakScaledGrid(base, 1), (Vec3{200, 100, 100}));
  EXPECT_EQ(weakScaledGrid(base, 2), (Vec3{200, 200, 100}));
  EXPECT_EQ(weakScaledGrid(base, 3), (Vec3{200, 200, 200}));
  EXPECT_EQ(weakScaledGrid(base, 4), (Vec3{400, 200, 200}));
}

// --------------------------------------------------------------------------
// Serial reference sanity
// --------------------------------------------------------------------------

TEST(JacobiReference, ZeroIterationsIsInitialCondition) {
  auto r = referenceJacobi({4, 4, 4}, 0);
  EXPECT_DOUBLE_EQ(r[0], initialValue(0, 0, 0));
  EXPECT_DOUBLE_EQ(r.back(), initialValue(3, 3, 3));
}

TEST(JacobiReference, ValuesDecayTowardsZeroBoundary) {
  // With a zero boundary, repeated averaging shrinks the field.
  auto a = referenceJacobi({6, 6, 6}, 1);
  auto b = referenceJacobi({6, 6, 6}, 20);
  double sum_a = 0, sum_b = 0;
  for (double v : a) sum_a += v;
  for (double v : b) sum_b += v;
  EXPECT_LT(sum_b, sum_a);
  EXPECT_GT(sum_b, 0.0);
}

// --------------------------------------------------------------------------
// Distributed results match the serial reference exactly — every stack, both
// modes, several decompositions (the paper's end-to-end correctness story).
// --------------------------------------------------------------------------

struct VerifyParam {
  Stack stack;
  Mode mode;
  Vec3 grid;
  int nodes;
  int iters;
};

class JacobiVerify : public ::testing::TestWithParam<VerifyParam> {};

TEST_P(JacobiVerify, MatchesSerialReference) {
  const auto p = GetParam();
  JacobiConfig cfg;
  cfg.stack = p.stack;
  cfg.mode = p.mode;
  cfg.nodes = p.nodes;
  cfg.grid = p.grid;
  cfg.iters = p.iters;
  cfg.warmup = 0;
  cfg.backed = true;
  const auto got = runJacobiVerified(cfg);
  const auto ref = referenceJacobi(p.grid, p.iters);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_DOUBLE_EQ(got[i], ref[i]) << "cell " << i;
  }
}

std::vector<VerifyParam> verifyParams() {
  std::vector<VerifyParam> out;
  for (Stack s : {Stack::Charm, Stack::Ampi, Stack::Ompi, Stack::Charm4py}) {
    for (Mode m : {Mode::Device, Mode::HostStaging}) {
      out.push_back({s, m, {12, 12, 12}, 1, 3});
      out.push_back({s, m, {24, 12, 6}, 2, 2});  // 12 blocks, inter-node halos
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllStacks, JacobiVerify, ::testing::ValuesIn(verifyParams()),
                         [](const ::testing::TestParamInfo<VerifyParam>& info) {
                           const auto& p = info.param;
                           std::string n = osu::name(static_cast<osu::Stack>(p.stack));
                           n += p.mode == Mode::Device ? "_D" : "_H";
                           n += "_n" + std::to_string(p.nodes);
                           for (char& c : n) {
                             if (c == '+') c = 'p';
                           }
                           return n;
                         });

// --------------------------------------------------------------------------
// Timing-shape properties (the claims of Figs. 14-16)
// --------------------------------------------------------------------------

JacobiResult timedRun(Stack s, Mode m, int nodes, Vec3 grid) {
  JacobiConfig cfg;
  cfg.stack = s;
  cfg.mode = m;
  cfg.nodes = nodes;
  cfg.grid = grid;
  cfg.iters = 3;
  cfg.warmup = 1;
  cfg.backed = false;
  return runJacobi(cfg);
}

TEST(JacobiTiming, DeviceCommBeatsHostOnOneNode) {
  for (Stack s : {Stack::Charm, Stack::Ampi, Stack::Charm4py}) {
    const auto h = timedRun(s, Mode::HostStaging, 1, {768, 768, 768});
    const auto d = timedRun(s, Mode::Device, 1, {768, 768, 768});
    EXPECT_GT(h.comm_ms_per_iter / d.comm_ms_per_iter, 4.0) << osu::name(static_cast<osu::Stack>(s));
    EXPECT_LT(d.overall_ms_per_iter, h.overall_ms_per_iter);
  }
}

TEST(JacobiTiming, ImprovementShrinksAcrossNodes) {
  // Paper: "the relative speedup decreases as the number of nodes increases".
  const auto h1 = timedRun(Stack::Charm, Mode::HostStaging, 1, {768, 768, 768});
  const auto d1 = timedRun(Stack::Charm, Mode::Device, 1, {768, 768, 768});
  const auto h8 = timedRun(Stack::Charm, Mode::HostStaging, 8, {1536, 1536, 768});
  const auto d8 = timedRun(Stack::Charm, Mode::Device, 8, {1536, 1536, 768});
  const double r1 = h1.comm_ms_per_iter / d1.comm_ms_per_iter;
  const double r8 = h8.comm_ms_per_iter / d8.comm_ms_per_iter;
  EXPECT_GT(r1, r8);
}

TEST(JacobiTiming, StrongScalingReducesIterationTime) {
  const auto a = timedRun(Stack::Ampi, Mode::Device, 2, {1024, 1024, 1024});
  const auto b = timedRun(Stack::Ampi, Mode::Device, 16, {1024, 1024, 1024});
  EXPECT_LT(b.overall_ms_per_iter, a.overall_ms_per_iter / 3.0);
}

TEST(JacobiTiming, AmpiTracksOpenMpiButSlower) {
  const auto ampi = timedRun(Stack::Ampi, Mode::Device, 4, {1536, 1536, 1536});
  const auto ompi = timedRun(Stack::Ompi, Mode::Device, 4, {1536, 1536, 1536});
  EXPECT_GE(ampi.comm_ms_per_iter, ompi.comm_ms_per_iter);
  EXPECT_LT(ampi.comm_ms_per_iter, 3.0 * ompi.comm_ms_per_iter);
}

TEST(JacobiTiming, Charm4pySlowestOverall) {
  const auto ck = timedRun(Stack::Charm, Mode::Device, 1, {768, 768, 768});
  const auto py = timedRun(Stack::Charm4py, Mode::Device, 1, {768, 768, 768});
  EXPECT_GT(py.overall_ms_per_iter, ck.overall_ms_per_iter);
}


TEST(JacobiOverdecomposition, VerifiedCorrectUnderOdf) {
  // More chares than PEs: neighbours can run a full iteration ahead, which
  // exercises the parity double-buffering of receive faces.
  for (int odf : {2, 4}) {
    JacobiConfig cfg;
    cfg.stack = Stack::Charm;
    cfg.mode = Mode::Device;
    cfg.nodes = 1;
    cfg.grid = {24, 24, 24};
    cfg.iters = 4;
    cfg.warmup = 0;
    cfg.backed = true;
    cfg.overdecomposition = odf;
    const auto got = runJacobiVerified(cfg);
    const auto ref = referenceJacobi(cfg.grid, cfg.iters);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_DOUBLE_EQ(got[i], ref[i]) << "odf " << odf << " cell " << i;
    }
  }
}

TEST(JacobiOverdecomposition, OverlapNeverSlowsDownMuch) {
  // odf > 1 adds per-chare overhead but hides halo latency; overall time
  // must stay within a sane band of the odf=1 run.
  JacobiConfig cfg;
  cfg.stack = Stack::Charm;
  cfg.mode = Mode::Device;
  cfg.nodes = 4;
  cfg.grid = {1536, 1536, 1536};
  cfg.iters = 3;
  cfg.warmup = 1;
  cfg.backed = false;
  const double base = runJacobi(cfg).overall_ms_per_iter;
  cfg.overdecomposition = 4;
  const double odf4 = runJacobi(cfg).overall_ms_per_iter;
  EXPECT_LT(odf4, 1.3 * base);
  EXPECT_GT(odf4, 0.5 * base);
}

}  // namespace
