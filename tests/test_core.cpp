#include <gtest/gtest.h>

#include <cstring>

#include "converse/converse.hpp"
#include "core/device_comm.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "sim/rng.hpp"
#include "ucx/context.hpp"

namespace {

using namespace cux;

// --------------------------------------------------------------------------
// Tag scheme (paper Fig. 3)
// --------------------------------------------------------------------------

TEST(TagScheme, DefaultSplitIs4_32_28) {
  core::TagScheme t;
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.msg_bits, 4u);
  EXPECT_EQ(t.pe_bits, 32u);
  EXPECT_EQ(t.cnt_bits, 28u);
}

TEST(TagScheme, RoundTripsFields) {
  core::TagScheme t;
  const auto tag = t.make(core::MsgType::Device, 123456, 7890);
  EXPECT_EQ(t.typeOf(tag), core::MsgType::Device);
  EXPECT_EQ(t.peOf(tag), 123456u);
  EXPECT_EQ(t.cntOf(tag), 7890u);
}

TEST(TagScheme, TypesAreDisjointUnderTypeMask) {
  core::TagScheme t;
  const auto host = t.make(core::MsgType::Host, 5, 9);
  const auto dev = t.make(core::MsgType::Device, 5, 9);
  EXPECT_NE(host & t.typeMask(), dev & t.typeMask());
}

TEST(TagScheme, CustomSplitsRoundTrip) {
  // The paper: "this division can be modified by the user to accommodate
  // different scaling configurations."
  for (unsigned pe_bits : {8u, 16u, 24u, 40u}) {
    core::TagScheme t{4, pe_bits, 60 - pe_bits};
    ASSERT_TRUE(t.valid());
    const std::uint64_t pe = t.maxPe();
    const std::uint64_t cnt = t.cntModulus() - 1;
    const auto tag = t.make(core::MsgType::ZcopyHost, pe, cnt);
    EXPECT_EQ(t.typeOf(tag), core::MsgType::ZcopyHost);
    EXPECT_EQ(t.peOf(tag), pe);
    EXPECT_EQ(t.cntOf(tag), cnt);
  }
}

TEST(TagScheme, InvalidSplitsRejected) {
  EXPECT_FALSE((core::TagScheme{4, 32, 27}.valid()));
  EXPECT_FALSE((core::TagScheme{0, 36, 28}.valid()));
}

TEST(TagScheme, CounterWrapsAtModulus) {
  core::TagScheme t{4, 56, 4};  // tiny counter: wraps at 16
  EXPECT_EQ(t.cntOf(t.make(core::MsgType::Device, 0, 16)), 0u);
  EXPECT_EQ(t.cntOf(t.make(core::MsgType::Device, 0, 17)), 1u);
}

TEST(TagScheme, TypeFieldIsMasked) {
#ifdef NDEBUG
  // An out-of-range type value (here 2^msg_bits + 1) must truncate to its
  // low msg_bits instead of leaking anywhere else in the tag; debug builds
  // assert on it instead.
  core::TagScheme t;
  const auto wild = t.make(static_cast<core::MsgType>(17), 123, 45);
  EXPECT_EQ(wild, t.make(static_cast<core::MsgType>(1), 123, 45));
  EXPECT_EQ(t.peOf(wild), 123u);
  EXPECT_EQ(t.cntOf(wild), 45u);
#else
  GTEST_SKIP() << "out-of-range MsgType asserts in debug builds";
#endif
}

// --------------------------------------------------------------------------
// Converse
// --------------------------------------------------------------------------

struct CoreFixture {
  explicit CoreFixture(int nodes = 2) : m(model::summit(nodes)) {
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    cmi = std::make_unique<cmi::Converse>(*sys, *ctx, m.costs);
    dev = std::make_unique<core::DeviceComm>(*cmi);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<cmi::Converse> cmi;
  std::unique_ptr<core::DeviceComm> dev;
};

std::vector<std::byte> bytesOf(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

TEST(Converse, DeliversToRegisteredHandler) {
  CoreFixture f;
  int got_src = -1;
  std::string got;
  const int h = f.cmi->registerHandler([&](cmi::Message msg) {
    got_src = msg.src_pe;
    got.assign(reinterpret_cast<const char*>(msg.payload().data()), msg.payload().size());
  });
  f.cmi->runOn(0, [&] { f.cmi->send(0, 7, h, bytesOf("hello")); });
  f.sys->engine.run();
  EXPECT_EQ(got_src, 0);
  EXPECT_EQ(got, "hello");
}

TEST(Converse, SelfSendLoopsBack) {
  CoreFixture f;
  bool got = false;
  const int h = f.cmi->registerHandler([&](cmi::Message) { got = true; });
  f.cmi->runOn(3, [&] { f.cmi->send(3, 3, h, bytesOf("x")); });
  f.sys->engine.run();
  EXPECT_TRUE(got);
}

TEST(Converse, CurrentPeTracksHandlerExecution) {
  CoreFixture f;
  int seen_pe = -1;
  const int h = f.cmi->registerHandler([&](cmi::Message) { seen_pe = f.cmi->currentPe(); });
  f.cmi->runOn(0, [&] {
    EXPECT_EQ(f.cmi->currentPe(), 0);
    f.cmi->send(0, 9, h, {});
  });
  f.sys->engine.run();
  EXPECT_EQ(seen_pe, 9);
  EXPECT_EQ(f.cmi->currentPe(), -1);
}

TEST(Converse, MessagesBetweenSamePairStayOrdered) {
  CoreFixture f;
  std::vector<int> order;
  const int h = f.cmi->registerHandler([&](cmi::Message msg) {
    int v = 0;
    std::memcpy(&v, msg.payload().data(), 4);
    order.push_back(v);
  });
  f.cmi->runOn(0, [&] {
    for (int i = 0; i < 20; ++i) {
      std::vector<std::byte> p(4);
      std::memcpy(p.data(), &i, 4);
      f.cmi->send(0, 1, h, std::move(p));
    }
  });
  f.sys->engine.run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Converse, LargePayloadsTravelByRendezvous) {
  CoreFixture f;
  std::vector<std::byte> big(1u << 20);
  sim::SplitMix64 rng(3);
  rng.fill(big.data(), big.size());
  std::vector<std::byte> got;
  const int h = f.cmi->registerHandler([&](cmi::Message msg) {
    got.assign(msg.payload().begin(), msg.payload().end());
  });
  auto copy = big;
  f.cmi->runOn(0, [&f, h, copy = std::move(copy)]() mutable {
    f.cmi->send(0, 6, h, std::move(copy));
  });
  f.sys->engine.run();
  EXPECT_EQ(got, big);
}

// --------------------------------------------------------------------------
// DeviceComm: LrtsSendDevice / LrtsRecvDevice (paper Sec. III-A)
// --------------------------------------------------------------------------

TEST(DeviceComm, TagCarriesTypePeAndCounter) {
  CoreFixture f;
  cuda::DeviceBuffer a(*f.sys, 2, 64);
  core::CmiDeviceBuffer buf{a.get(), 64, 0};
  f.cmi->runOn(2, [&] { f.dev->lrtsSendDevice(2, 3, buf); });
  f.sys->engine.run();
  const auto& t = f.cmi->tags();
  EXPECT_EQ(t.typeOf(buf.tag), core::MsgType::Device);
  EXPECT_EQ(t.peOf(buf.tag), 2u);
  EXPECT_EQ(t.cntOf(buf.tag), 0u);
}

TEST(DeviceComm, CounterIncrementsPerPe) {
  CoreFixture f;
  cuda::DeviceBuffer a(*f.sys, 0, 64);
  core::CmiDeviceBuffer b1{a.get(), 64, 0}, b2{a.get(), 64, 0}, b3{a.get(), 64, 0};
  f.cmi->runOn(0, [&] {
    f.dev->lrtsSendDevice(0, 1, b1);
    f.dev->lrtsSendDevice(0, 2, b2);
  });
  f.cmi->runOn(5, [&] { f.dev->lrtsSendDevice(5, 1, b3); });
  f.sys->engine.run();
  EXPECT_EQ(f.cmi->tags().cntOf(b1.tag), 0u);
  EXPECT_EQ(f.cmi->tags().cntOf(b2.tag), 1u);
  EXPECT_EQ(f.cmi->tags().cntOf(b3.tag), 0u);  // separate per-PE counter
}

TEST(DeviceComm, HostBufferGetsZcopyType) {
  CoreFixture f;
  std::vector<std::byte> host(1u << 20);
  core::CmiDeviceBuffer buf{host.data(), host.size(), 0};
  f.cmi->runOn(0, [&] { f.dev->lrtsSendDevice(0, 1, buf); });
  f.sys->engine.run();
  EXPECT_EQ(f.cmi->tags().typeOf(buf.tag), core::MsgType::ZcopyHost);
}

TEST(DeviceComm, SendRecvMovesDeviceData) {
  CoreFixture f;
  const std::size_t n = 1u << 20;
  cuda::DeviceBuffer src(*f.sys, 0, n), dst(*f.sys, 6, n);
  sim::SplitMix64 rng(8);
  rng.fill(src.get(), n);

  core::CmiDeviceBuffer buf{src.get(), n, 0};
  bool sent = false, received = false;
  f.cmi->runOn(0, [&] {
    f.dev->lrtsSendDevice(0, 6, buf, [&] { sent = true; });
    // Metadata exchange would normally deliver the tag; here the test passes
    // it directly to the receive side.
    f.cmi->runOn(6, [&] {
      f.dev->lrtsRecvDevice(6, core::DeviceRdmaOp{dst.get(), n, buf.tag},
                            core::DeviceRecvType::Raw, [&] { received = true; });
    });
  });
  f.sys->engine.run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(received);
  EXPECT_EQ(std::memcmp(src.get(), dst.get(), n), 0);
}

TEST(DeviceComm, RecvBeforeRtsAlsoCompletes) {
  CoreFixture f;
  const std::size_t n = 64 * 1024;
  cuda::DeviceBuffer src(*f.sys, 0, n), dst(*f.sys, 1, n);
  sim::SplitMix64 rng(9);
  rng.fill(src.get(), n);

  // Pre-generate the tag the sender will use (counter 0 on PE 0).
  const auto tag = f.cmi->tags().make(core::MsgType::Device, 0, 0);
  bool received = false;
  f.cmi->runOn(1, [&] {
    f.dev->lrtsRecvDevice(1, core::DeviceRdmaOp{dst.get(), n, tag},
                          core::DeviceRecvType::Raw, [&] { received = true; });
  });
  core::CmiDeviceBuffer buf{src.get(), n, 0};
  f.sys->engine.schedule(sim::usec(50), [&] {
    f.cmi->runOn(0, [&] { f.dev->lrtsSendDevice(0, 1, buf); });
  });
  f.sys->engine.run();
  EXPECT_EQ(buf.tag, tag);
  EXPECT_TRUE(received);
  EXPECT_EQ(std::memcmp(src.get(), dst.get(), n), 0);
}

TEST(DeviceComm, CounterWrapsAroundCntBits) {
  // CNT_BITS wraparound in lrtsSendDevice: with a 4-bit counter the 17th
  // send from a PE reuses counter value 0 without touching the PE or type
  // fields.
  model::Model m = model::summit(2);
  hw::System sys(m.machine);
  ucx::Context ctx(sys, m.ucx);
  cmi::Converse cmi(sys, ctx, m.costs, core::TagScheme{4, 56, 4});
  core::DeviceComm dev(cmi);
  cuda::DeviceBuffer a(sys, 0, 64);
  std::vector<std::uint64_t> cnts;
  cmi.runOn(0, [&] {
    for (int i = 0; i < 18; ++i) {
      core::CmiDeviceBuffer buf{a.get(), 64, 0};
      dev.lrtsSendDevice(0, 1, buf);
      cnts.push_back(cmi.tags().cntOf(buf.tag));
      EXPECT_EQ(cmi.tags().typeOf(buf.tag), core::MsgType::Device);
      EXPECT_EQ(cmi.tags().peOf(buf.tag), 0u);
    }
  });
  sys.engine.run();
  ASSERT_EQ(cnts.size(), 18u);
  for (std::size_t i = 0; i < cnts.size(); ++i) EXPECT_EQ(cnts[i], i % 16);
}

TEST(DeviceComm, UserTagSendsStayOrderedInSmpMode) {
  // Regression: lrtsSendDeviceUserTag used to schedule directly at the PE's
  // busy horizon instead of going through cmi.inject(); in SMP mode that
  // bypassed the comm thread, letting a user-tag send overtake a regular
  // device send issued earlier by the same PE.
  model::Model m = model::summit(2);
  m.costs.smp_comm_thread = true;
  hw::System sys(m.machine);
  sys.trace.enable();
  ucx::Context ctx(sys, m.ucx);
  cmi::Converse cmi(sys, ctx, m.costs);
  core::DeviceComm dev(cmi);
  cuda::DeviceBuffer a(sys, 0, 64), b(sys, 0, 64);
  core::CmiDeviceBuffer regular{a.get(), 64, 0}, user{b.get(), 64, 0};
  cmi.runOn(0, [&] {
    dev.lrtsSendDevice(0, 1, regular);
    dev.lrtsSendDeviceUserTag(0, 1, user, 7);
  });
  sys.engine.run();
  std::vector<core::MsgType> order;
  for (const auto& rec : sys.trace.records()) {
    if (rec.cat == sim::TraceCat::UcxSend) order.push_back(cmi.tags().typeOf(rec.tag));
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], core::MsgType::Device);
  EXPECT_EQ(order[1], core::MsgType::DeviceUser);
}

// Regression: sendsByType used to read the *receive* counters, so a send
// issued as one model type was invisible while an unrelated receive was
// reported as a send. The two families are now tracked independently.
TEST(DeviceComm, AccountsSendAndRecvTypesIndependently) {
  CoreFixture f;
  cuda::DeviceBuffer src(*f.sys, 0, 64), dst(*f.sys, 1, 64);
  core::CmiDeviceBuffer buf{src.get(), 64, 0};
  f.cmi->runOn(0, [&] {
    f.dev->lrtsSendDevice(0, 1, buf, {}, core::DeviceRecvType::Charm4py);
    f.cmi->runOn(1, [&] {
      f.dev->lrtsRecvDevice(1, core::DeviceRdmaOp{dst.get(), 64, buf.tag},
                            core::DeviceRecvType::Ampi, {});
    });
  });
  f.sys->engine.run();
  EXPECT_EQ(f.dev->sendsByType(core::DeviceRecvType::Charm4py), 1u);
  EXPECT_EQ(f.dev->recvsByType(core::DeviceRecvType::Ampi), 1u);
  // The bug's signature: a send must never surface through the recv counter
  // of its type, nor a recv through the send counter.
  EXPECT_EQ(f.dev->sendsByType(core::DeviceRecvType::Ampi), 0u);
  EXPECT_EQ(f.dev->recvsByType(core::DeviceRecvType::Charm4py), 0u);
  EXPECT_EQ(f.dev->deviceSends(), 1u);
}

}  // namespace
