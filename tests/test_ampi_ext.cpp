#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "ampi/ampi.hpp"
#include "coll/coll.hpp"
#include "model/model.hpp"
#include "sim/rng.hpp"
#include "ucx/context.hpp"

/// sendrecv, iprobe, comm-scoped collectives through CommRank, and UCX probe.

namespace {

using namespace cux;

struct Fixture {
  explicit Fixture(int nodes = 2, int nranks = -1) : m(model::summit(nodes)) {
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    rt = std::make_unique<ck::Runtime>(*sys, *ctx, m);
    world = std::make_unique<ampi::World>(*rt, nranks);
  }
  void runAll(std::function<sim::FutureTask(ampi::Rank&)> main) {
    world->run(std::move(main));
    sys->engine.run();
    ASSERT_TRUE(world->done().ready()) << "deadlock";
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<ck::Runtime> rt;
  std::unique_ptr<ampi::World> world;
};

TEST(AmpiSendrecv, PairwiseExchangeNoDeadlock) {
  Fixture f(1);
  std::vector<int> got(6, -1);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    const int partner = r.rank() ^ 1;  // 0<->1, 2<->3, 4<->5
    int mine = 100 + r.rank();
    int theirs = -1;
    co_await r.sendrecv(&mine, sizeof mine, partner, 0, &theirs, sizeof theirs, partner, 0);
    got[static_cast<std::size_t>(r.rank())] = theirs;
  });
  for (int i = 0; i < 6; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], 100 + (i ^ 1));
}

TEST(AmpiSendrecv, RingShiftWithDeviceBuffers) {
  Fixture f(1);
  const std::size_t n = 64 * 1024;
  std::vector<std::unique_ptr<cuda::DeviceBuffer>> bufs, in;
  for (int i = 0; i < 6; ++i) {
    bufs.push_back(std::make_unique<cuda::DeviceBuffer>(*f.sys, i, n));
    in.push_back(std::make_unique<cuda::DeviceBuffer>(*f.sys, i, n));
    std::memset(bufs.back()->get(), i + 1, n);
  }
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    const int next = (r.rank() + 1) % 6;
    const int prev = (r.rank() + 5) % 6;
    co_await r.sendrecv(bufs[static_cast<std::size_t>(r.rank())]->get(), n, next, 1,
                        in[static_cast<std::size_t>(r.rank())]->get(), n, prev, 1);
  });
  for (int i = 0; i < 6; ++i) {
    const auto expected = static_cast<unsigned char>((i + 5) % 6 + 1);
    EXPECT_EQ(static_cast<unsigned char*>(in[static_cast<std::size_t>(i)]->get())[0], expected);
  }
}

TEST(AmpiIprobe, SeesPendingUnexpectedMessage) {
  Fixture f(1);
  bool saw_before = true, saw_after = false;
  ampi::Status probed;
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) {
      int v = 7;
      co_await r.send(&v, sizeof v, 1, 55);
    } else if (r.rank() == 1) {
      saw_before = r.iprobe(0, 55).has_value();  // nothing arrived yet
      co_await sim::delay(r.system().engine, sim::msec(1));
      auto st = r.iprobe(0, 55);
      saw_after = st.has_value();
      if (st) probed = *st;
      int got = 0;
      co_await r.recv(&got, sizeof got, 0, 55);
      // After the receive, the message is gone.
      EXPECT_FALSE(r.iprobe(0, 55).has_value());
    }
  });
  EXPECT_FALSE(saw_before);
  EXPECT_TRUE(saw_after);
  EXPECT_EQ(probed.source, 0);
  EXPECT_EQ(probed.tag, 55);
  EXPECT_EQ(probed.bytes, sizeof(int));
}

TEST(AmpiIprobe, WildcardsMatch) {
  Fixture f(1);
  bool found = false;
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 3) {
      int v = 1;
      co_await r.send(&v, sizeof v, 0, 9);
    } else if (r.rank() == 0) {
      co_await sim::delay(r.system().engine, sim::msec(1));
      found = r.iprobe(ampi::kAnySource, ampi::kAnyTag).has_value();
      int got = 0;
      co_await r.recv(&got, sizeof got, ampi::kAnySource, ampi::kAnyTag);
    }
  });
  EXPECT_TRUE(found);
}

TEST(AmpiCommRank, CollectivesOverSubCommunicator) {
  // Allreduce over the odd-ranks communicator only, through the CommRank
  // adapter; even ranks never participate.
  Fixture f(2);
  std::vector<double> results(12, -1.0);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    ampi::Comm sub = co_await r.split(r.commWorld(), r.rank() % 2, r.rank());
    if (r.rank() % 2 == 1) {
      ampi::CommRank cr(r, sub);
      double mine = static_cast<double>(r.rank());
      double out = 0;
      co_await coll::allreduce(cr, &mine, &out, 1, coll::Op::Sum);
      results[static_cast<std::size_t>(r.rank())] = out;
    }
  });
  // odd world ranks: 1+3+5+7+9+11 = 36
  for (int i = 0; i < 12; ++i) {
    if (i % 2 == 1) {
      EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(i)], 36.0) << i;
    } else {
      EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(i)], -1.0) << i;
    }
  }
}

TEST(AmpiCommRank, BcastOverSubCommunicator) {
  Fixture f(1);
  std::vector<int> vals(6);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    ampi::Comm sub = co_await r.split(r.commWorld(), r.rank() < 3 ? 0 : 1, r.rank());
    ampi::CommRank cr(r, sub);
    int v = r.rank() == 0 || r.rank() == 3 ? 1000 + r.rank() : 0;
    co_await coll::bcast(cr, &v, sizeof v, /*root=*/0);
    vals[static_cast<std::size_t>(r.rank())] = v;
  });
  for (int i = 0; i < 3; ++i) EXPECT_EQ(vals[static_cast<std::size_t>(i)], 1000);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(vals[static_cast<std::size_t>(i)], 1003);
}

TEST(UcxProbe, ReportsPendingMessageWithoutConsuming) {
  auto m = model::summit(1);
  hw::System sys(m.machine);
  ucx::Context ctx(sys, m.ucx);
  std::vector<std::byte> src(100);
  ctx.tagSend(0, 1, src.data(), 100, 0x77, {});
  sys.engine.run();
  auto info = ctx.worker(1).probe(0x77, ucx::kFullMask);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->tag, 0x77u);
  EXPECT_EQ(info->len, 100u);
  EXPECT_EQ(info->src_pe, 0);
  EXPECT_EQ(ctx.worker(1).unexpectedCount(), 1u);  // not consumed
  EXPECT_FALSE(ctx.worker(1).probe(0x78, ucx::kFullMask).has_value());
}


TEST(AmpiCollectives, RankLevelWrappers) {
  Fixture f(1);
  std::vector<double> allred(6, 0);
  std::vector<int> bcast_vals(6, 0);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    // MPI_Bcast
    int v = r.rank() == 2 ? 777 : 0;
    co_await r.bcast(&v, sizeof v, /*root=*/2);
    bcast_vals[static_cast<std::size_t>(r.rank())] = v;
    // MPI_Allreduce (sum of ranks = 15)
    double mine = static_cast<double>(r.rank());
    double out = 0;
    co_await r.allreduce(&mine, &out, 1, /*op=Sum*/ 0);
    allred[static_cast<std::size_t>(r.rank())] = out;
  });
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(bcast_vals[static_cast<std::size_t>(i)], 777);
    EXPECT_DOUBLE_EQ(allred[static_cast<std::size_t>(i)], 15.0);
  }
}

TEST(AmpiCollectives, GatherScatterAlltoallWrappers) {
  Fixture f(1);
  std::vector<std::vector<double>> gathered(6);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    double mine = 10.0 + r.rank();
    std::vector<double> all(6, 0);
    co_await r.allgather(&mine, all.data(), sizeof(double));
    gathered[static_cast<std::size_t>(r.rank())] = all;
  });
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(gathered[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                       10.0 + j);
    }
  }
}

TEST(AmpiWaitAny, ResolvesToFirstCompletion) {
  Fixture f(1);
  int first_idx = -1;
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) {
      int a = 0, b = 0;
      std::vector<ampi::Request> reqs;
      reqs.push_back(r.irecv(&a, sizeof a, 1, 10));  // arrives late
      reqs.push_back(r.irecv(&b, sizeof b, 2, 20));  // arrives first
      first_idx = co_await r.waitAny(reqs);
      co_await r.waitAll(reqs);
    } else if (r.rank() == 1) {
      co_await sim::delay(r.system().engine, sim::msec(2));
      int v = 1;
      co_await r.send(&v, sizeof v, 0, 10);
    } else if (r.rank() == 2) {
      int v = 2;
      co_await r.send(&v, sizeof v, 0, 20);
    }
  });
  EXPECT_EQ(first_idx, 1);
}

}  // namespace
