#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "ampi/ampi.hpp"
#include "apps/train/train.hpp"
#include "charm4py/charm4py.hpp"
#include "coll/c4p_group.hpp"
#include "coll/charm_section.hpp"
#include "coll/coll.hpp"
#include "model/model.hpp"
#include "sim/fault.hpp"
#include "ucx/context.hpp"

/// Fail-stop PE failures end to end: the heartbeat detector turns requests
/// against a dead PE terminal (never a hang), collectives with a failed
/// member abort on every survivor within the detection + retry budget,
/// survivors rebuild via the ULFM-style shrink on all three stacks, and the
/// training workload checkpoint/restarts to a final model state bit-identical
/// to an unfailed run. Transient outages (LinkDownWindow, including the
/// bidirectional helper) are recoverable by retransmission alone and must
/// not abort anything.

namespace {

using namespace cux;

struct StackFixture {
  explicit StackFixture(int nodes, sim::FaultConfig fault = {}) : m(model::summit(nodes)) {
    m.machine.fault = fault;
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    rt = std::make_unique<ck::Runtime>(*sys, *ctx, m);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<ck::Runtime> rt;
};

// Device send/recv buffers, one pair per member; member r's send buffer
// holds 100*r + j.
struct MemberBufs {
  MemberBufs(hw::System& sys, const std::vector<int>& pes, std::uint64_t count) {
    for (std::size_t r = 0; r < pes.size(); ++r) {
      send.push_back(std::make_unique<cuda::DeviceBuffer>(sys, pes[r], count * 8));
      recv.push_back(std::make_unique<cuda::DeviceBuffer>(sys, pes[r], count * 8));
      auto* p = send.back()->as<double>();
      for (std::uint64_t j = 0; j < count; ++j) {
        p[j] = 100.0 * static_cast<double>(r) + static_cast<double>(j);
      }
    }
  }
  std::vector<std::unique_ptr<cuda::DeviceBuffer>> send, recv;
};

template <class RankT>
sim::FutureTask memberTask(RankT r, std::function<sim::FutureTask(RankT&)> body,
                           std::shared_ptr<int> left, sim::Promise<void> all_done) {
  co_await body(r);
  if (--*left == 0) all_done.set();
}

sim::Future<void> runSection(coll::CharmSection& sec,
                             std::function<sim::FutureTask(coll::SectionRank&)> body) {
  auto left = std::make_shared<int>(sec.size());
  sim::Promise<void> done;
  for (int r = 0; r < sec.size(); ++r) {
    coll::SectionRank sr = sec.rank(r);
    sec.runtime().startOn(sec.peOf(r), [sr, body, left, done] {
      (void)memberTask(sr, body, left, done);
    });
  }
  return done.future();
}

sim::Future<void> runGroup(coll::C4pGroup& grp,
                           std::function<sim::FutureTask(coll::C4pRank&)> body) {
  auto left = std::make_shared<int>(grp.size());
  sim::Promise<void> done;
  for (int r = 0; r < grp.size(); ++r) {
    coll::C4pRank cr = grp.rank(r);
    grp.charm4py().startOn(grp.peOf(r), [cr, body, left, done] {
      (void)memberTask(cr, body, left, done);
    });
  }
  return done.future();
}

// A fault config whose only event is PE `pe` halting at `at_us`.
sim::FaultConfig killAt(int pe, double at_us) {
  sim::FaultConfig fc;
  fc.killPe(pe, sim::usec(at_us));
  return fc;
}

// --------------------------------------------------------------------------
// Detector: requests against a dead PE terminate, bounded by the
// detection horizon plus the retry budget — the engine always drains.
// (Context-only fixture: raw tagSend with a ck::Runtime registered would
// dispatch into the chare table.)
// --------------------------------------------------------------------------

struct CtxFixture {
  explicit CtxFixture(const sim::FaultConfig& fault) : m(model::summit(2)) {
    m.machine.fault = fault;
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
};

TEST(FailstopDetect, RendezvousSendToDeadPeTurnsPeerFailedNotHang) {
  // The destination is dead before the RTS can land: every copy blackholes
  // at arrival, and the retry machinery — not an infinite resend loop —
  // must surface PeerFailed once the detector has blamed the dead endpoint.
  CtxFixture f(killAt(6, 0.0));
  std::vector<std::byte> src(64 * 1024);
  bool send_done = false;
  auto req = f.ctx->tagSend(0, 6, src.data(), src.size(), 0x9, [&](ucx::Request& r) {
    send_done = true;
    EXPECT_TRUE(r.failed());
  });
  f.sys->engine.run();  // returning at all proves nothing hung
  EXPECT_TRUE(send_done);
  EXPECT_TRUE(req->peerFailed());
  EXPECT_GE(f.ctx->peFailuresDetected(), 1u);
  EXPECT_GE(f.ctx->peerFailedRequests(), 1u);
}

TEST(FailstopDetect, DeadPesOwnInflightSendTerminates) {
  // The dying PE had an undelivered rendezvous send of its own in flight
  // (its link went down with it): the peerKnownDead check is src/dst
  // symmetric, so the dead side's request reaches a terminal state too and
  // nothing is parked forever.
  sim::FaultConfig fc = killAt(1, 20.0);
  fc.down_windows.push_back(sim::LinkDownWindow{0, sim::usec(5000.0), 1, 0});
  CtxFixture f(fc);
  std::vector<std::byte> src(64 * 1024);
  auto sreq = f.ctx->tagSend(1, 0, src.data(), src.size(), 0xB, {});
  f.sys->engine.run();
  EXPECT_TRUE(sreq->failed()) << "dead PE's own in-flight send must terminate";
  EXPECT_TRUE(sreq->peerFailed());
  EXPECT_GE(f.ctx->peFailuresDetected(), 1u);
}

// --------------------------------------------------------------------------
// FaultConfig::bidirectionalOutage covers both directions of the pair.
// --------------------------------------------------------------------------

TEST(FailstopOutage, BidirectionalOutageDropsBothDirectionsDuringWindow) {
  sim::FaultInjector inj;
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.bidirectionalOutage(sim::usec(100.0), sim::usec(200.0), 2, 5);
  inj.configure(cfg);
  EXPECT_FALSE(inj.linkDown(sim::usec(99.0), 2, 5));
  EXPECT_TRUE(inj.linkDown(sim::usec(150.0), 2, 5));
  EXPECT_TRUE(inj.linkDown(sim::usec(150.0), 5, 2));  // reverse leg too
  EXPECT_FALSE(inj.linkDown(sim::usec(200.0), 2, 5));  // half-open interval
  EXPECT_FALSE(inj.linkDown(sim::usec(150.0), 2, 4));  // other pairs untouched
  EXPECT_FALSE(inj.linkDown(sim::usec(150.0), 4, 2));
}

// --------------------------------------------------------------------------
// Collectives under a transient bidirectional outage: retransmission alone
// recovers — correct sums, no abort — on all three stacks.
// --------------------------------------------------------------------------

void expectSum(const MemberBufs& bufs, int n, std::uint64_t count, const char* what) {
  for (int r = 0; r < n; ++r) {
    const auto* p = bufs.recv[static_cast<std::size_t>(r)]->as<double>();
    for (std::uint64_t j = 0; j < count; j += 61) {
      const double expected =
          100.0 * (n * (n - 1) / 2) + static_cast<double>(n) * static_cast<double>(j);
      ASSERT_DOUBLE_EQ(p[j], expected) << what << ": member " << r << " element " << j;
    }
  }
}

sim::FaultConfig outage23() {
  sim::FaultConfig fc;
  fc.enabled = true;
  // Both directions of the PE2<->PE3 link dead for 100 us mid-collective;
  // well under the retry budget, so retransmits recover without aborting.
  fc.bidirectionalOutage(sim::usec(20.0), sim::usec(120.0), 2, 3);
  return fc;
}

TEST(FailstopOutage, AmpiAllreduceRidesOutLinkOutage) {
  StackFixture f(2, outage23());
  const int n = 8;
  const std::uint64_t count = 4096;
  std::vector<int> pes;
  for (int r = 0; r < n; ++r) pes.push_back(r);
  MemberBufs bufs(*f.sys, pes, count);

  coll::CollConfig cfg;
  cfg.impl = coll::CollImpl::Ring;
  cfg.chunk_bytes = 8 * 1024;
  ampi::World world(*f.rt, n);
  bool any_abort = false;
  world.run([&](ampi::Rank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    co_await coll::allreduce(r, bufs.send[me]->get(), bufs.recv[me]->get(), count,
                             coll::Op::Sum, coll::kCollTagBase, cfg);
    any_abort |= r.aborted();
  });
  f.sys->engine.run();
  ASSERT_TRUE(world.done().ready()) << "allreduce under outage deadlocked";
  EXPECT_FALSE(any_abort) << "transient outage must not revoke the communicator";
  expectSum(bufs, n, count, "ampi@outage");
}

TEST(FailstopOutage, SectionAllreduceRidesOutLinkOutage) {
  StackFixture f(2, outage23());
  const std::vector<int> pes = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::uint64_t count = 4096;
  MemberBufs bufs(*f.sys, pes, count);
  coll::CharmSection sec(*f.rt, pes);

  coll::CollConfig cfg;
  cfg.impl = coll::CollImpl::Ring;
  cfg.chunk_bytes = 8 * 1024;
  auto done = runSection(sec, [&](coll::SectionRank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    co_await coll::allreduce(r, bufs.send[me]->get(), bufs.recv[me]->get(), count,
                             coll::Op::Sum, coll::kCollTagBase, cfg);
  });
  f.sys->engine.run();
  ASSERT_TRUE(done.ready()) << "section allreduce under outage deadlocked";
  EXPECT_FALSE(sec.aborted());
  expectSum(bufs, static_cast<int>(pes.size()), count, "section@outage");
}

TEST(FailstopOutage, Charm4pyAllreduceRidesOutLinkOutage) {
  StackFixture f(2, outage23());
  const std::vector<int> pes = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::uint64_t count = 4096;
  MemberBufs bufs(*f.sys, pes, count);
  c4p::Charm4py py(*f.rt);
  coll::C4pGroup grp(py, pes);

  coll::CollConfig cfg;
  cfg.impl = coll::CollImpl::Ring;
  cfg.chunk_bytes = 8 * 1024;
  auto done = runGroup(grp, [&](coll::C4pRank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    co_await coll::allreduce(r, bufs.send[me]->get(), bufs.recv[me]->get(), count,
                             coll::Op::Sum, coll::kCollTagBase, cfg);
  });
  f.sys->engine.run();
  ASSERT_TRUE(done.ready()) << "charm4py allreduce under outage deadlocked";
  EXPECT_FALSE(grp.aborted());
  expectSum(bufs, static_cast<int>(pes.size()), count, "charm4py@outage");
}

// --------------------------------------------------------------------------
// A collective with a failed member aborts on every survivor — bounded by
// the detector, never a hang — and succeeds on the shrunk communicator.
// --------------------------------------------------------------------------

constexpr int kDeadRank = 3;  // member (and PE) killed mid-collective
// Large enough that the allreduce is still in flight when detection lands
// (~500 us after the 50 us kill).
constexpr std::uint64_t kBigCount = 256 * 1024;

TEST(FailstopShrink, AmpiAllreduceAbortsOnSurvivorsThenShrinksAndSucceeds) {
  const int n = 8;
  StackFixture f(2, killAt(kDeadRank, 50.0));
  std::vector<int> pes;
  for (int r = 0; r < n; ++r) pes.push_back(r);
  MemberBufs bufs(*f.sys, pes, kBigCount);
  const std::uint64_t count2 = 4096;
  MemberBufs bufs2(*f.sys, pes, count2);

  coll::CollConfig cfg;
  cfg.impl = coll::CollImpl::Ring;
  cfg.chunk_bytes = 64 * 1024;
  ampi::World world(*f.rt, n);
  std::vector<char> survivor_aborted(static_cast<std::size_t>(n), 0);
  std::vector<char> shrunk_ok(static_cast<std::size_t>(n), 0);
  world.run([&](ampi::Rank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    ampi::CommRank wr(r, r.commWorld());
    co_await coll::allreduce(wr, bufs.send[me]->get(), bufs.recv[me]->get(), kBigCount,
                             coll::Op::Sum, coll::kCollTagBase, cfg);
    if (r.rank() != kDeadRank) survivor_aborted[me] = wr.aborted() ? 1 : 0;
    ampi::Comm nc = co_await wr.shrink();
    if (!nc.valid()) co_return;  // the dead rank drains here
    ampi::CommRank sr(r, nc);
    co_await coll::allreduce(sr, bufs2.send[me]->get(), bufs2.recv[me]->get(), count2,
                             coll::Op::Sum, coll::collTag(1), cfg);
    shrunk_ok[me] = 1;
  });
  f.sys->engine.run();
  ASSERT_TRUE(world.done().ready()) << "fail-stop run deadlocked";

  // Sum over the 7 survivors of (100*r + j), original rank numbering.
  double rank_sum = 0;
  for (int r = 0; r < n; ++r) {
    if (r != kDeadRank) rank_sum += 100.0 * r;
  }
  for (int r = 0; r < n; ++r) {
    const auto me = static_cast<std::size_t>(r);
    if (r == kDeadRank) {
      EXPECT_EQ(shrunk_ok[me], 0) << "dead rank joined the shrunk communicator";
      continue;
    }
    EXPECT_EQ(survivor_aborted[me], 1) << "survivor " << r << " never observed the abort";
    ASSERT_EQ(shrunk_ok[me], 1) << "survivor " << r << " missed the shrunk allreduce";
    const auto* p = bufs2.recv[me]->as<double>();
    for (std::uint64_t j = 0; j < count2; j += 61) {
      ASSERT_DOUBLE_EQ(p[j], rank_sum + static_cast<double>(n - 1) * static_cast<double>(j))
          << "survivor " << r << " element " << j;
    }
  }
  EXPECT_GE(f.sys->obs.registry.counterValue("coll.aborted"), 1u);
}

TEST(FailstopShrink, SectionAllreduceAbortsThenShrunkSectionSucceeds) {
  StackFixture f(2, killAt(kDeadRank, 50.0));
  const std::vector<int> pes = {0, 1, 2, 3, 4, 5, 6, 7};
  MemberBufs bufs(*f.sys, pes, kBigCount);
  coll::CharmSection sec(*f.rt, pes);

  coll::CollConfig cfg;
  cfg.impl = coll::CollImpl::Ring;
  cfg.chunk_bytes = 64 * 1024;
  auto done = runSection(sec, [&](coll::SectionRank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    co_await coll::allreduce(r, bufs.send[me]->get(), bufs.recv[me]->get(), kBigCount,
                             coll::Op::Sum, coll::kCollTagBase, cfg);
  });
  f.sys->engine.run();
  ASSERT_TRUE(done.ready()) << "section fail-stop run deadlocked";
  EXPECT_TRUE(sec.aborted()) << "section never observed the member failure";

  const std::vector<int> alive = sec.survivors();
  ASSERT_EQ(alive.size(), pes.size() - 1);
  EXPECT_TRUE(std::find(alive.begin(), alive.end(), kDeadRank) == alive.end());

  auto s2 = sec.shrink();
  ASSERT_NE(s2, nullptr);
  ASSERT_EQ(s2->size(), static_cast<int>(alive.size()));
  const std::uint64_t count2 = 4096;
  MemberBufs bufs2(*f.sys, alive, count2);
  auto done2 = runSection(*s2, [&](coll::SectionRank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    co_await coll::allreduce(r, bufs2.send[me]->get(), bufs2.recv[me]->get(), count2,
                             coll::Op::Sum, coll::collTag(1), cfg);
  });
  f.sys->engine.run();
  ASSERT_TRUE(done2.ready()) << "shrunk section allreduce deadlocked";
  EXPECT_FALSE(s2->aborted());
  expectSum(bufs2, static_cast<int>(alive.size()), count2, "section@shrunk");
}

TEST(FailstopShrink, Charm4pyGroupAbortsThenShrunkGroupSucceeds) {
  StackFixture f(2, killAt(kDeadRank, 50.0));
  const std::vector<int> pes = {0, 1, 2, 3, 4, 5, 6, 7};
  MemberBufs bufs(*f.sys, pes, kBigCount);
  c4p::Charm4py py(*f.rt);
  coll::C4pGroup grp(py, pes);

  coll::CollConfig cfg;
  cfg.impl = coll::CollImpl::Ring;
  cfg.chunk_bytes = 64 * 1024;
  auto done = runGroup(grp, [&](coll::C4pRank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    co_await coll::allreduce(r, bufs.send[me]->get(), bufs.recv[me]->get(), kBigCount,
                             coll::Op::Sum, coll::kCollTagBase, cfg);
  });
  f.sys->engine.run();
  ASSERT_TRUE(done.ready()) << "charm4py fail-stop run deadlocked";
  EXPECT_TRUE(grp.aborted()) << "group never observed the member failure";

  const std::vector<int> alive = grp.survivors();
  ASSERT_EQ(alive.size(), pes.size() - 1);
  auto g2 = grp.shrink();
  ASSERT_NE(g2, nullptr);
  const std::uint64_t count2 = 4096;
  MemberBufs bufs2(*f.sys, alive, count2);
  auto done2 = runGroup(*g2, [&](coll::C4pRank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    co_await coll::allreduce(r, bufs2.send[me]->get(), bufs2.recv[me]->get(), count2,
                             coll::Op::Sum, coll::collTag(1), cfg);
  });
  f.sys->engine.run();
  ASSERT_TRUE(done2.ready()) << "shrunk group allreduce deadlocked";
  EXPECT_FALSE(g2->aborted());
  expectSum(bufs2, static_cast<int>(alive.size()), count2, "charm4py@shrunk");
}

// --------------------------------------------------------------------------
// Recovery metrics reach the registry.
// --------------------------------------------------------------------------

TEST(FailstopMetrics, RegistryExposesDetectionAndShrinkCounters) {
  StackFixture f(2, killAt(kDeadRank, 50.0));
  const int n = 8;
  std::vector<int> pes;
  for (int r = 0; r < n; ++r) pes.push_back(r);
  MemberBufs bufs(*f.sys, pes, kBigCount);

  coll::CollConfig cfg;
  cfg.impl = coll::CollImpl::Ring;
  cfg.chunk_bytes = 64 * 1024;
  ampi::World world(*f.rt, n);
  world.run([&](ampi::Rank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    ampi::CommRank wr(r, r.commWorld());
    co_await coll::allreduce(wr, bufs.send[me]->get(), bufs.recv[me]->get(), kBigCount,
                             coll::Op::Sum, coll::kCollTagBase, cfg);
    ampi::Comm nc = co_await wr.shrink();
    (void)nc;
  });
  f.sys->engine.run();
  ASSERT_TRUE(world.done().ready());

  f.sys->obs.refresh();
  const obs::Registry& reg = f.sys->obs.registry;
  EXPECT_GE(reg.gaugeValue("ucx.pe_failures_detected"), 1u);
  EXPECT_GE(reg.gaugeValue("ucx.peer_failed_reqs"), 1u);
  EXPECT_GE(reg.counterValue("coll.aborted"), 1u);
  EXPECT_GE(reg.gaugeValue("ampi.revoked_comms"), 1u);
  EXPECT_GE(reg.gaugeValue("ampi.shrink_events"), 1u);
}

// --------------------------------------------------------------------------
// Training: lose a PE mid-step, restart from the checkpoint, finish with a
// final model state bit-identical to the unfailed run — on all three stacks.
// --------------------------------------------------------------------------

train::TrainConfig smallTrainConfig() {
  train::TrainConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = 8;
  cfg.steps = 3;
  cfg.layer_params = {16 * 1024, 64 * 1024, 128 * 1024, 128 * 1024, 64 * 1024, 16 * 1024};
  cfg.bucket_bytes = 1024 * 1024;
  return cfg;
}

class FailstopTrain : public ::testing::TestWithParam<train::Stack> {};

TEST_P(FailstopTrain, CheckpointRestartReproducesUnfailedDigest) {
  const train::TrainConfig cfg = smallTrainConfig();
  const train::TrainResult base = train::runTrain(cfg, GetParam());
  ASSERT_FALSE(base.failed);
  ASSERT_TRUE(base.verified);
  EXPECT_EQ(base.restarts, 0);
  EXPECT_EQ(base.hung_ranks, 0);
  ASSERT_NE(base.model_digest, 0u);

  train::TrainConfig fcfg = cfg;
  fcfg.fault.kill_pe = 1;
  fcfg.fault.kill_at_us = base.total_us * 0.4;  // mid-run, collectives in flight
  const train::TrainResult rec = train::runTrain(fcfg, GetParam());
  ASSERT_FALSE(rec.failed) << "recovery exhausted its restart budget";
  EXPECT_TRUE(rec.recovered) << "the injected failure never hit";
  EXPECT_GE(rec.restarts, 1);
  EXPECT_EQ(rec.completed_steps, cfg.steps);
  EXPECT_EQ(rec.hung_ranks, 0) << "a rank neither finished nor took the abort exit";
  EXPECT_TRUE(rec.verified);
  EXPECT_EQ(rec.model_digest, base.model_digest)
      << "recovered model diverged from the unfailed run";
  // Lost work means the recovered job cannot have been cheaper.
  EXPECT_GT(rec.total_us, base.total_us);
}

INSTANTIATE_TEST_SUITE_P(AllStacks, FailstopTrain,
                         ::testing::Values(train::Stack::Ampi, train::Stack::Charm,
                                           train::Stack::Charm4py),
                         [](const ::testing::TestParamInfo<train::Stack>& i) {
                           switch (i.param) {
                             case train::Stack::Ampi: return "ampi";
                             case train::Stack::Charm: return "charm";
                             case train::Stack::Charm4py: return "charm4py";
                           }
                           return "unknown";
                         });

// --------------------------------------------------------------------------
// Gate hygiene: a fault config whose knobs are loaded but whose master
// switch is off must produce a schedule bit-identical to no config at all —
// the failure machinery may not perturb healthy runs.
// --------------------------------------------------------------------------

std::uint64_t tracedRunHash(const sim::FaultConfig& fault) {
  StackFixture f(2, fault);
  f.sys->trace.enable();
  const int n = 8;
  const std::uint64_t count = 8192;
  std::vector<int> pes;
  for (int r = 0; r < n; ++r) pes.push_back(r);
  MemberBufs bufs(*f.sys, pes, count);

  coll::CollConfig cfg;
  cfg.impl = coll::CollImpl::Ring;
  cfg.chunk_bytes = 16 * 1024;
  ampi::World world(*f.rt, n);
  world.run([&](ampi::Rank& r) -> sim::FutureTask {
    const auto me = static_cast<std::size_t>(r.rank());
    co_await coll::allreduce(r, bufs.send[me]->get(), bufs.recv[me]->get(), count,
                             coll::Op::Sum, coll::kCollTagBase, cfg);
  });
  f.sys->engine.run();
  EXPECT_TRUE(world.done().ready());
  return f.sys->trace.hash();
}

TEST(FailstopGate, DisabledFaultConfigLeavesScheduleBitIdentical) {
  sim::FaultConfig loaded;
  loaded.killPe(3, sim::usec(50.0));
  loaded.bidirectionalOutage(sim::usec(20.0), sim::usec(120.0), 2, 3);
  loaded.enabled = false;  // knobs armed, master switch off
  const std::uint64_t off = tracedRunHash({});
  EXPECT_EQ(tracedRunHash(loaded), off)
      << "disabled failure machinery changed the event schedule";
  EXPECT_EQ(tracedRunHash({}), off) << "baseline run is nondeterministic";
}

}  // namespace
