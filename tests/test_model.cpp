#include <gtest/gtest.h>

#include "apps/osu/osu.hpp"
#include "core/tag_scheme.hpp"
#include "model/model.hpp"

/// Calibration regression tests: pin the model to the quantitative anchors
/// the paper states in prose (Sections IV-A/B). If a refactor or re-tuning
/// moves a headline number out of its band, these tests catch it before the
/// figure benches silently drift.

namespace {

using namespace cux;

TEST(ModelConfig, SummitTopologyMatchesPaper) {
  const auto m = model::summit(4);
  EXPECT_EQ(m.machine.num_nodes, 4);
  EXPECT_EQ(m.machine.gpus_per_node, 6);       // six V100s per AC922
  EXPECT_EQ(m.machine.sockets_per_node, 2);    // two Power9s
  EXPECT_DOUBLE_EQ(m.machine.nvlink.bandwidth_gbps, 50.0);  // "theoretical peak of 50 GB/s"
  EXPECT_DOUBLE_EQ(m.machine.xbus.bandwidth_gbps, 64.0);    // "X-Bus ... 64 GB/s"
  EXPECT_DOUBLE_EQ(m.machine.ib.bandwidth_gbps, 12.5);      // "EDR ... 12.5 GB/s"
  EXPECT_EQ(m.machine.numPes(), 24);
}

TEST(ModelConfig, TagSchemeDefaultsMatchFig3) {
  core::TagScheme t;
  EXPECT_EQ(t.msg_bits, 4u);   // MSG_BITS(4)
  EXPECT_EQ(t.pe_bits, 32u);   // PE_BITS (default: 32)
  EXPECT_EQ(t.cnt_bits, 28u);  // CNT_BITS (default: 28)
}

TEST(ModelConfig, PackThresholdAt128K) {
  // The AMPI-H eager->rendezvous switch the paper pins at 128 KB.
  EXPECT_EQ(model::summit(1).costs.host_pack_threshold, 128u * 1024);
}

osu::BenchConfig quick(osu::Stack s, osu::Mode m, osu::Placement p) {
  osu::BenchConfig cfg;
  cfg.stack = s;
  cfg.mode = m;
  cfg.place = p;
  cfg.iters = 10;
  cfg.warmup = 3;
  return cfg;
}

TEST(ModelAnchors, OpenMpiSmallDeviceLatencyNearTwoMicroseconds) {
  // "the GPU-GPU transfer itself with UCX has a latency of less than 2 us,
  // similar to OpenMPI" — intra-node, plus software overheads.
  auto cfg = quick(osu::Stack::Ompi, osu::Mode::Device, osu::Placement::IntraNode);
  const double us = osu::latencyPoint(cfg, 8);
  EXPECT_GT(us, 1.5);
  EXPECT_LT(us, 3.5);
}

TEST(ModelAnchors, AmpiOverheadAboveUcxNearEightMicroseconds) {
  auto ampi = quick(osu::Stack::Ampi, osu::Mode::Device, osu::Placement::IntraNode);
  auto ompi = quick(osu::Stack::Ompi, osu::Mode::Device, osu::Placement::IntraNode);
  const double delta = osu::latencyPoint(ampi, 8) - osu::latencyPoint(ompi, 8);
  EXPECT_GT(delta, 4.0);
  EXPECT_LT(delta, 12.0);  // paper: "about 8 us"
}

TEST(ModelAnchors, PeakIntraNodeBandwidthNearNvlink) {
  // Charm++ 44.7 GB/s, AMPI 45.4 GB/s in the paper.
  for (osu::Stack s : {osu::Stack::Charm, osu::Stack::Ampi}) {
    auto cfg = quick(s, osu::Mode::Device, osu::Placement::IntraNode);
    const double gbps = osu::bandwidthPoint(cfg, 4u << 20) / 1000.0;
    EXPECT_GT(gbps, 42.0) << osu::name(s);
    EXPECT_LT(gbps, 50.0) << osu::name(s);
  }
}

TEST(ModelAnchors, PeakInterNodeBandwidthNearTenGBs) {
  // "Charm++ demonstrating up to ... 10 GB/s, and AMPI up to ... 10 GB/s".
  for (osu::Stack s : {osu::Stack::Charm, osu::Stack::Ampi}) {
    auto cfg = quick(s, osu::Mode::Device, osu::Placement::InterNode);
    const double gbps = osu::bandwidthPoint(cfg, 4u << 20) / 1000.0;
    EXPECT_GT(gbps, 9.0) << osu::name(s);
    EXPECT_LT(gbps, 12.0) << osu::name(s);
  }
}

TEST(ModelAnchors, Charm4pyIntraBandwidthBelowOthers) {
  // Paper: 35.5 GB/s at 4 MB and still rising.
  auto cfg = quick(osu::Stack::Charm4py, osu::Mode::Device, osu::Placement::IntraNode);
  const double gbps = osu::bandwidthPoint(cfg, 4u << 20) / 1000.0;
  EXPECT_GT(gbps, 30.0);
  EXPECT_LT(gbps, 42.0);
}

TEST(ModelAnchors, TableOneLatencyRangesWithinBand) {
  // Intra-node latency improvement ranges per stack (paper Table I), with a
  // generous band: measured min in [1.5, 5], max in [7, 20].
  for (osu::Stack s : {osu::Stack::Charm, osu::Stack::Ampi, osu::Stack::Charm4py}) {
    auto h = quick(s, osu::Mode::HostStaging, osu::Placement::IntraNode);
    auto d = quick(s, osu::Mode::Device, osu::Placement::IntraNode);
    const double small = osu::latencyPoint(h, 8) / osu::latencyPoint(d, 8);
    const double large = osu::latencyPoint(h, 4u << 20) / osu::latencyPoint(d, 4u << 20);
    EXPECT_GT(small, 1.5) << osu::name(s);
    EXPECT_LT(small, 5.0) << osu::name(s);
    EXPECT_GT(large, 7.0) << osu::name(s);
    EXPECT_LT(large, 20.0) << osu::name(s);
  }
}

TEST(ModelAnchors, InterNodeImprovementSmallerThanIntra) {
  for (osu::Stack s : {osu::Stack::Charm, osu::Stack::Ampi}) {
    auto h_in = quick(s, osu::Mode::HostStaging, osu::Placement::IntraNode);
    auto d_in = quick(s, osu::Mode::Device, osu::Placement::IntraNode);
    auto h_x = quick(s, osu::Mode::HostStaging, osu::Placement::InterNode);
    auto d_x = quick(s, osu::Mode::Device, osu::Placement::InterNode);
    const std::size_t n = 4u << 20;
    const double intra = osu::latencyPoint(h_in, n) / osu::latencyPoint(d_in, n);
    const double inter = osu::latencyPoint(h_x, n) / osu::latencyPoint(d_x, n);
    EXPECT_GT(intra, inter) << osu::name(s);
  }
}

}  // namespace
