#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "ampi/ampi.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "sim/rng.hpp"

namespace {

using namespace cux;

struct AmpiFixture {
  explicit AmpiFixture(int nodes = 2, int nranks = -1) : m(model::summit(nodes)) {
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    rt = std::make_unique<ck::Runtime>(*sys, *ctx, m);
    world = std::make_unique<ampi::World>(*rt, nranks);
  }
  void runAll(std::function<sim::FutureTask(ampi::Rank&)> main) {
    world->run(std::move(main));
    sys->engine.run();
    ASSERT_TRUE(world->done().ready()) << "AMPI program deadlocked";
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<ck::Runtime> rt;
  std::unique_ptr<ampi::World> world;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  sim::SplitMix64 rng(seed);
  rng.fill(v.data(), n);
  return v;
}

// --------------------------------------------------------------------------
// Host-memory point-to-point
// --------------------------------------------------------------------------

TEST(Ampi, HostSendRecvSmall) {
  AmpiFixture f;
  auto src = pattern(256, 1);
  std::vector<std::byte> dst(256);
  bool checked = false;
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) {
      co_await r.send(src.data(), src.size(), 1, 7);
    } else if (r.rank() == 1) {
      ampi::Status st;
      co_await r.recv(dst.data(), dst.size(), 0, 7, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 256u);
      checked = true;
    }
    co_return;
  });
  EXPECT_TRUE(checked);
  EXPECT_EQ(src, dst);
}

TEST(Ampi, HostSendRecvLargeZeroCopy) {
  AmpiFixture f;
  const std::size_t n = 2u << 20;  // above the 128 KiB pack threshold
  auto src = pattern(n, 2);
  std::vector<std::byte> dst(n);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) co_await r.send(src.data(), n, 6, 0);  // inter-node
    if (r.rank() == 6) co_await r.recv(dst.data(), n, 0, 0);
    co_return;
  });
  EXPECT_EQ(src, dst);
}

TEST(Ampi, DeviceSendRecv) {
  AmpiFixture f;
  const std::size_t n = 1u << 20;
  auto ref = pattern(n, 3);
  cuda::DeviceBuffer a(*f.sys, 0, n), b(*f.sys, 6, n);
  std::memcpy(a.get(), ref.data(), n);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) co_await r.send(a.get(), n, 6, 5);
    if (r.rank() == 6) co_await r.recv(b.get(), n, 0, 5);
    co_return;
  });
  EXPECT_EQ(std::memcmp(ref.data(), b.get(), n), 0);
}

TEST(Ampi, SmallDeviceMessagesUseEagerGdrPath) {
  AmpiFixture f;
  const std::size_t n = 64;  // below the device eager threshold
  auto ref = pattern(n, 4);
  cuda::DeviceBuffer a(*f.sys, 0, n), b(*f.sys, 1, n);
  std::memcpy(a.get(), ref.data(), n);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) co_await r.send(a.get(), n, 1, 0);
    if (r.rank() == 1) co_await r.recv(b.get(), n, 0, 0);
    co_return;
  });
  EXPECT_EQ(std::memcmp(ref.data(), b.get(), n), 0);
}

// --------------------------------------------------------------------------
// Matching semantics
// --------------------------------------------------------------------------

TEST(Ampi, AnySourceReceives) {
  AmpiFixture f;
  int v = 41;
  int got = 0;
  ampi::Status st;
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 3) co_await r.send(&v, sizeof v, 0, 9);
    if (r.rank() == 0) co_await r.recv(&got, sizeof got, ampi::kAnySource, 9, &st);
    co_return;
  });
  EXPECT_EQ(got, 41);
  EXPECT_EQ(st.source, 3);
}

TEST(Ampi, AnyTagReceives) {
  AmpiFixture f;
  int v = 17, got = 0;
  ampi::Status st;
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 1) co_await r.send(&v, sizeof v, 0, 1234);
    if (r.rank() == 0) co_await r.recv(&got, sizeof got, 1, ampi::kAnyTag, &st);
    co_return;
  });
  EXPECT_EQ(got, 17);
  EXPECT_EQ(st.tag, 1234);
}

TEST(Ampi, TagsSelectAmongMessages) {
  AmpiFixture f;
  int a = 1, b = 2, got_a = 0, got_b = 0;
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) {
      co_await r.send(&a, sizeof a, 1, 100);
      co_await r.send(&b, sizeof b, 1, 200);
    } else if (r.rank() == 1) {
      // Receive in reverse tag order: matching must respect tags.
      co_await r.recv(&got_b, sizeof got_b, 0, 200);
      co_await r.recv(&got_a, sizeof got_a, 0, 100);
    }
    co_return;
  });
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 2);
}

TEST(Ampi, NonOvertakingSameTag) {
  // MPI ordering: two same-tag messages between one pair match in send
  // order, even though one is eager (small) and one rendezvous (large) and
  // the small one physically overtakes the large in the network.
  AmpiFixture f;
  const std::size_t big_n = 1u << 20;
  auto big = pattern(big_n, 5);
  std::vector<std::byte> small{std::byte{0xAA}};
  std::vector<std::byte> first(big_n), second(1);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) {
      auto s1 = r.isend(big.data(), big_n, 1, 5);
      auto s2 = r.isend(small.data(), 1, 1, 5);
      std::vector<ampi::Request> reqs{s1, s2};
      co_await r.waitAll(reqs);
    } else if (r.rank() == 1) {
      co_await r.recv(first.data(), big_n, 0, 5);   // must be the big one
      co_await r.recv(second.data(), 1, 0, 5);      // then the small one
    }
    co_return;
  });
  EXPECT_EQ(first, big);
  EXPECT_EQ(second[0], std::byte{0xAA});
}

TEST(Ampi, UnexpectedMessagesMatchLateReceives) {
  AmpiFixture f;
  int v = 55, got = 0;
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) {
      co_await r.send(&v, sizeof v, 1, 3);
    } else if (r.rank() == 1) {
      // Give the message time to arrive unexpected, then post the receive.
      co_await sim::delay(r.system().engine, sim::msec(1));
      co_await r.recv(&got, sizeof got, 0, 3);
    }
    co_return;
  });
  EXPECT_EQ(got, 55);
}

TEST(Ampi, IsendIrecvWaitAll) {
  AmpiFixture f;
  constexpr int kMsgs = 8;
  std::vector<std::vector<std::byte>> srcs, dsts(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    srcs.push_back(pattern(1024 * (static_cast<std::size_t>(i) + 1), 10 + i));
    dsts[static_cast<std::size_t>(i)].resize(srcs.back().size());
  }
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) {
      std::vector<ampi::Request> reqs;
      for (int i = 0; i < kMsgs; ++i)
        reqs.push_back(r.isend(srcs[static_cast<std::size_t>(i)].data(),
                               srcs[static_cast<std::size_t>(i)].size(), 1, i));
      co_await r.waitAll(reqs);
    } else if (r.rank() == 1) {
      std::vector<ampi::Request> reqs;
      for (int i = 0; i < kMsgs; ++i)
        reqs.push_back(r.irecv(dsts[static_cast<std::size_t>(i)].data(),
                               dsts[static_cast<std::size_t>(i)].size(), 0, i));
      co_await r.waitAll(reqs);
    }
    co_return;
  });
  for (int i = 0; i < kMsgs; ++i) EXPECT_EQ(srcs[static_cast<std::size_t>(i)], dsts[static_cast<std::size_t>(i)]);
}

TEST(Ampi, SelfSend) {
  AmpiFixture f;
  int v = 7, got = 0;
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 2) {
      auto s = r.isend(&v, sizeof v, 2, 0);
      co_await r.recv(&got, sizeof got, 2, 0);
      co_await r.wait(s);
    }
    co_return;
  });
  EXPECT_EQ(got, 7);
}

// --------------------------------------------------------------------------
// Collectives & virtualisation
// --------------------------------------------------------------------------

TEST(Ampi, BarrierSynchronises) {
  AmpiFixture f;
  std::vector<double> after(static_cast<std::size_t>(f.world->size()), 0.0);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    // Rank i works i*10us before the barrier; all must leave together.
    co_await sim::delay(r.system().engine, sim::usec(10.0 * r.rank()));
    co_await r.barrier();
    after[static_cast<std::size_t>(r.rank())] = r.timeUs();
    co_return;
  });
  const double slowest = 10.0 * (f.world->size() - 1);
  for (double t : after) EXPECT_GE(t, slowest);
}

TEST(Ampi, MultipleBarriersInSequence) {
  AmpiFixture f(1);
  int phase_errors = 0;
  std::vector<int> counter(1, 0);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    for (int it = 0; it < 5; ++it) {
      co_await r.barrier();
      if (r.rank() == 0) ++counter[0];
      co_await r.barrier();
      if (counter[0] != it + 1) ++phase_errors;
    }
    co_return;
  });
  EXPECT_EQ(phase_errors, 0);
  EXPECT_EQ(counter[0], 5);
}

TEST(Ampi, VirtualisationMultipleRanksPerPe) {
  // 24 ranks on 6 PEs (4x virtualisation): AMPI's rank-per-chare design.
  AmpiFixture f(1, 24);
  std::vector<int> got(24, -1);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    const int next = (r.rank() + 1) % r.size();
    const int prev = (r.rank() - 1 + r.size()) % r.size();
    int token = r.rank();
    auto s = r.isend(&token, sizeof token, next, 0);
    int in = -1;
    co_await r.recv(&in, sizeof in, prev, 0);
    co_await r.wait(s);
    got[static_cast<std::size_t>(r.rank())] = in;
    co_return;
  });
  for (int i = 0; i < 24; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], (i - 1 + 24) % 24);
}

TEST(Ampi, RingExchangeAllRanks) {
  AmpiFixture f(2);
  const int n = f.world->size();
  std::vector<double> vals(static_cast<std::size_t>(n), 0);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    double v = 100.0 + r.rank();
    double in = 0;
    auto s = r.isend(&v, sizeof v, (r.rank() + 1) % r.size(), 1);
    co_await r.recv(&in, sizeof in, (r.rank() - 1 + r.size()) % r.size(), 1);
    co_await r.wait(s);
    vals[static_cast<std::size_t>(r.rank())] = in;
    co_return;
  });
  for (int i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(vals[static_cast<std::size_t>(i)], 100.0 + (i - 1 + n) % n);
}

// --------------------------------------------------------------------------
// Device-pointer cache (paper Sec. III-C1)
// --------------------------------------------------------------------------

TEST(Ampi, DevicePointerCacheHitsOnRepeatedSends) {
  AmpiFixture f(1);
  const std::size_t n = 64;
  cuda::DeviceBuffer a(*f.sys, 0, n), b(*f.sys, 1, n);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0) {
      for (int i = 0; i < 10; ++i) co_await r.send(a.get(), n, 1, i);
    } else if (r.rank() == 1) {
      for (int i = 0; i < 10; ++i) co_await r.recv(b.get(), n, 0, i);
    }
    co_return;
  });
  EXPECT_GE(f.world->cacheHits(), 9u);   // first lookup misses, rest hit
  EXPECT_GE(f.world->cacheMisses(), 1u);
}

// --------------------------------------------------------------------------
// Datatype overloads
// --------------------------------------------------------------------------

TEST(Ampi, DatatypeCountOverloads) {
  AmpiFixture f(1);
  std::vector<double> src{1.5, 2.5, 3.5};
  std::vector<double> dst(3, 0.0);
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    if (r.rank() == 0)
      co_await r.wait(r.isend(src.data(), 3, ampi::Datatype::Double, 1, 0));
    if (r.rank() == 1)
      co_await r.wait(r.irecv(dst.data(), 3, ampi::Datatype::Double, 0, 0));
    co_return;
  });
  EXPECT_EQ(src, dst);
}

// --------------------------------------------------------------------------
// Property: random traffic with mixed sizes/spaces arrives intact.
// --------------------------------------------------------------------------

class AmpiRandomTraffic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AmpiRandomTraffic, AllMessagesIntact) {
  AmpiFixture f(2);
  sim::SplitMix64 rng(GetParam());
  constexpr int kPairs = 10;
  struct Xfer {
    std::vector<std::byte> ref;
    void* src;
    void* dst;
    bool src_dev, dst_dev;
    std::size_t n;
    int from, to, tag;
  };
  std::vector<Xfer> xs;
  std::vector<std::unique_ptr<cuda::DeviceBuffer>> bufs;
  std::vector<std::unique_ptr<std::vector<std::byte>>> hosts;
  for (int i = 0; i < kPairs; ++i) {
    Xfer x;
    x.n = 1 + rng.below(300 * 1024);
    x.ref = pattern(x.n, 1000 + static_cast<std::uint64_t>(i));
    x.from = static_cast<int>(rng.below(12));
    do {
      x.to = static_cast<int>(rng.below(12));
    } while (x.to == x.from);
    x.tag = i;
    x.src_dev = rng.below(2) == 0;
    x.dst_dev = rng.below(2) == 0;
    if (x.src_dev) {
      bufs.push_back(std::make_unique<cuda::DeviceBuffer>(*f.sys, x.from, x.n));
      x.src = bufs.back()->get();
    } else {
      hosts.push_back(std::make_unique<std::vector<std::byte>>(x.n));
      x.src = hosts.back()->data();
    }
    std::memcpy(x.src, x.ref.data(), x.n);
    if (x.dst_dev) {
      bufs.push_back(std::make_unique<cuda::DeviceBuffer>(*f.sys, x.to, x.n));
      x.dst = bufs.back()->get();
    } else {
      hosts.push_back(std::make_unique<std::vector<std::byte>>(x.n));
      x.dst = hosts.back()->data();
    }
    xs.push_back(std::move(x));
  }
  f.runAll([&](ampi::Rank& r) -> sim::FutureTask {
    std::vector<ampi::Request> reqs;
    for (auto& x : xs) {
      if (x.from == r.rank()) reqs.push_back(r.isend(x.src, x.n, x.to, x.tag));
      if (x.to == r.rank()) reqs.push_back(r.irecv(x.dst, x.n, x.from, x.tag));
    }
    co_await r.waitAll(reqs);
    co_return;
  });
  for (auto& x : xs) EXPECT_EQ(std::memcmp(x.dst, x.ref.data(), x.n), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmpiRandomTraffic, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
