#include <cstdio>
#include <cstring>

#include "apps/train/train.hpp"

/// Extension bench: the ChainerMN-style data-parallel training workload on
/// all three stacks. Reports the per-step anatomy — compute wall, the union
/// interval of the bucket allreduces vs their serial sum (the overlap the
/// gradient bucketing buys), optimizer — plus the host-staged baseline.

using namespace cux;

namespace {

void report(const char* label, const train::TrainResult& r) {
  std::printf("%-22s ranks=%d buckets=%d verified=%s pool(h/m)=%llu/%llu\n", label, r.ranks,
              r.buckets, r.verified ? "yes" : "no",
              static_cast<unsigned long long>(r.pool_hits),
              static_cast<unsigned long long>(r.pool_misses));
  std::printf("  %-5s %10s %10s %12s %12s %9s %10s\n", "step", "step_us", "compute",
              "allred_wall", "bucket_sum", "overlap", "optimizer");
  for (std::size_t s = 0; s < r.steps.size(); ++s) {
    const train::StepStat& st = r.steps[s];
    std::printf("  %-5zu %10.1f %10.1f %12.1f %12.1f %8.2f%% %10.1f\n", s, st.step_us,
                st.compute_us, st.allreduce_wall_us, st.bucket_sum_us,
                100.0 * st.overlapRatio(), st.optimizer_us);
  }
  std::printf("  avg step %.1f us, steady-state overlap ratio %.2f\n\n", r.avgStepUs(),
              r.avgOverlap());
}

}  // namespace

int main(int argc, char** argv) {
  train::TrainConfig cfg;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--steps") == 0 && a + 1 < argc) cfg.steps = std::atoi(argv[++a]);
    if (std::strcmp(argv[a], "--ranks") == 0 && a + 1 < argc) cfg.ranks = std::atoi(argv[++a]);
    if (std::strcmp(argv[a], "--nodes") == 0 && a + 1 < argc) cfg.nodes = std::atoi(argv[++a]);
  }
  std::printf("# Data-parallel SGD, %llu params, %d ranks, %d steps\n\n",
              static_cast<unsigned long long>(cfg.totalParams()), cfg.ranks, cfg.steps);
  for (const auto s : {train::Stack::Ampi, train::Stack::Charm, train::Stack::Charm4py}) {
    report(train::name(s), train::runTrain(cfg, s));
  }
  train::TrainConfig host = cfg;
  host.host_staged = true;
  report("ampi (host-staged)", train::runTrain(host, train::Stack::Ampi));
  std::printf("Gradient buckets launch their allreduce while backward continues; the\n"
              "union of the bucket intervals (allred_wall) stays well under their sum.\n");
  return 0;
}
