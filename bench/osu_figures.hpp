#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/osu/osu.hpp"

/// Shared driver for the OSU figure benches (paper Figs. 10-13): each figure
/// has three subplots — (a) Charm++, (b) AMPI + OpenMPI, (c) Charm4py — with
/// a host-staging (H) and a GPU-aware (D) series per stack.

namespace cux::bench {

enum class Metric { Latency, Bandwidth };

struct Series {
  std::string label;
  std::vector<osu::Point> points;
};

inline std::vector<osu::Stack> subplotStacks(int subplot) {
  switch (subplot) {
    case 0:
      return {osu::Stack::Charm};
    case 1:
      return {osu::Stack::Ampi, osu::Stack::Ompi};
    default:
      return {osu::Stack::Charm4py};
  }
}

inline Series runSeries(Metric metric, osu::Stack stack, osu::Mode mode,
                        osu::Placement place, int iters, int warmup) {
  osu::BenchConfig cfg;
  cfg.stack = stack;
  cfg.mode = mode;
  cfg.place = place;
  cfg.iters = iters;
  cfg.warmup = warmup;
  Series s;
  s.label = std::string(osu::name(stack)) + "-" + osu::suffix(mode);
  s.points = metric == Metric::Latency ? osu::runLatency(cfg) : osu::runBandwidth(cfg);
  return s;
}

inline void printFigure(const char* fig_id, const char* title, Metric metric,
                        osu::Placement place, int iters = 20, int warmup = 5) {
  const char* unit = metric == Metric::Latency ? "one-way latency (us)" : "bandwidth (MB/s)";
  std::printf("# %s: %s — %s\n", fig_id, title, unit);
  const char* sub_names[3] = {"(a) Charm++", "(b) AMPI and OpenMPI", "(c) Charm4py"};
  for (int sub = 0; sub < 3; ++sub) {
    std::printf("\n## %s %s\n", fig_id, sub_names[sub]);
    std::vector<Series> series;
    for (osu::Stack stack : subplotStacks(sub)) {
      series.push_back(runSeries(metric, stack, osu::Mode::HostStaging, place, iters, warmup));
      series.push_back(runSeries(metric, stack, osu::Mode::Device, place, iters, warmup));
    }
    std::printf("%-10s", "size");
    for (const auto& s : series) std::printf(" %14s", s.label.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < series.front().points.size(); ++i) {
      std::printf("%-10zu", series.front().points[i].bytes);
      for (const auto& s : series) std::printf(" %14.2f", s.points[i].value);
      std::printf("\n");
    }
  }
}

}  // namespace cux::bench
