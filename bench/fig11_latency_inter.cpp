#include "osu_figures.hpp"

/// Reproduces Figure 11 of the paper: Inter-node latency, host-staging vs GPU-aware.
int main() {
  using namespace cux;
  bench::printFigure("Figure 11", "Inter-node latency, host-staging vs GPU-aware", bench::Metric::Latency,
                     osu::Placement::InterNode);
  return 0;
}
