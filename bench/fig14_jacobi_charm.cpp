#include "jacobi_figures.hpp"

/// Reproduces Figure 14 of the paper: Charm++ Jacobi3D weak and strong
/// scaling, host-staging vs GPU-aware halo exchange.
int main() {
  cux::bench::printJacobiFigure("Figure 14", cux::jacobi::Stack::Charm);
  return 0;
}
