#pragma once

#include <cstdio>
#include <vector>

#include "apps/jacobi/jacobi.hpp"

/// Shared driver for the Jacobi3D figure benches (paper Figs. 14-16): weak
/// scaling over 1-256 nodes (base 1536^3, dimensions doubled in x,y,z
/// order) and strong scaling over 8-256 nodes (3072^3), reporting overall
/// and communication time per iteration for the -H and -D variants.

namespace cux::bench {

inline void printJacobiFigure(const char* fig_id, jacobi::Stack stack, int iters = 4,
                              int warmup = 1) {
  using namespace cux::jacobi;
  const bool with_ompi = stack == Stack::Ampi;  // Fig. 15 includes OpenMPI

  auto run = [&](Stack s, Mode m, int nodes, Vec3 grid) {
    JacobiConfig cfg;
    cfg.stack = s;
    cfg.mode = m;
    cfg.nodes = nodes;
    cfg.grid = grid;
    cfg.iters = iters;
    cfg.warmup = warmup;
    cfg.backed = false;
    return runJacobi(cfg);
  };

  auto header = [&](const char* phase) {
    std::printf("\n## %s %s — average time per iteration (ms)\n", fig_id, phase);
    if (with_ompi) {
      std::printf("%-6s %10s %10s %10s %10s | %10s %10s %10s %10s\n", "nodes", "AMPI-H",
                  "AMPI-D", "OpenMPI-H", "OpenMPI-D", "commH", "commD", "ocommH", "ocommD");
    } else {
      std::printf("%-6s %12s %12s | %12s %12s\n", "nodes", "overall-H", "overall-D", "comm-H",
                  "comm-D");
    }
  };

  auto row = [&](int nodes, Vec3 grid) {
    const auto h = run(stack, Mode::HostStaging, nodes, grid);
    const auto d = run(stack, Mode::Device, nodes, grid);
    if (with_ompi) {
      const auto oh = run(Stack::Ompi, Mode::HostStaging, nodes, grid);
      const auto od = run(Stack::Ompi, Mode::Device, nodes, grid);
      std::printf("%-6d %10.2f %10.2f %10.2f %10.2f | %10.2f %10.2f %10.2f %10.2f\n", nodes,
                  h.overall_ms_per_iter, d.overall_ms_per_iter, oh.overall_ms_per_iter,
                  od.overall_ms_per_iter, h.comm_ms_per_iter, d.comm_ms_per_iter,
                  oh.comm_ms_per_iter, od.comm_ms_per_iter);
    } else {
      std::printf("%-6d %12.2f %12.2f | %12.2f %12.2f\n", nodes, h.overall_ms_per_iter,
                  d.overall_ms_per_iter, h.comm_ms_per_iter, d.comm_ms_per_iter);
    }
  };

  std::printf("# %s: Jacobi3D, %s — host-staging vs GPU-aware\n", fig_id,
              osu::name(static_cast<osu::Stack>(stack)));
  header("weak scaling (base 1536^3, x2 per node doubling)");
  for (int e = 0; e <= 8; ++e) row(1 << e, weakScaledGrid(kWeakBase, e));
  header("strong scaling (3072^3)");
  for (int e = 3; e <= 8; ++e) row(1 << e, kStrongGrid);
}

}  // namespace cux::bench
