#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/osu/osu.hpp"
#include "model/model.hpp"

/// Extension bench: multi-path NVLink / multi-rail NIC transfers through
/// hw::PathScheduler (fig12/fig13 bandwidth variants).
///
/// * intra-node (fig12 shape): the osu_bw device series on a summit node
///   with one NVLink brick and multipath off, vs two bricks with the
///   occupancy-aware chunk scheduler splitting the transfer across the
///   direct and the neighbor-staged route.
/// * inter-node (fig13 shape): the same series across two nodes with 1, 2
///   and 4 NIC rails; the scheduler stripes the rendezvous data leg across
///   the rails.
///
/// Methodology: each point is an osu_bw window run (64 back-to-back
/// non-blocking sends answered by a reply) on a fresh simulated machine;
/// each configuration is measured 3 times and the median reported (the
/// simulator is deterministic; the median equals each run — recorded anyway
/// so numbers stay comparable with this repo's other BENCH files).

using namespace cux;

namespace {

osu::BenchConfig base(osu::Placement place, int iters, int warmup) {
  osu::BenchConfig cfg;
  cfg.stack = osu::Stack::Charm;
  cfg.mode = osu::Mode::Device;
  cfg.place = place;
  cfg.iters = iters;
  cfg.warmup = warmup;
  cfg.model = model::summit(place == osu::Placement::InterNode ? 2 : 1);
  cfg.model.machine.backed_device_memory = false;  // timing-only run
  return cfg;
}

double median3(const osu::BenchConfig& cfg, std::size_t bytes) {
  double t[3];
  for (double& v : t) v = osu::bandwidthPoint(cfg, bytes);
  std::sort(t, t + 3);
  return t[1];
}

struct IntraPoint {
  std::size_t bytes;
  double single_MBps;
  double multi_MBps;
};

struct InterPoint {
  std::size_t bytes;
  int rails;
  double MBps;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int iters = 10;
  int warmup = 3;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--json") == 0) json = true;
    if (std::strcmp(argv[a], "--iters") == 0 && a + 1 < argc) iters = std::atoi(argv[++a]);
    if (std::strcmp(argv[a], "--warmup") == 0 && a + 1 < argc) warmup = std::atoi(argv[++a]);
  }

  const std::vector<std::size_t> sizes = {1u << 20, 4u << 20, 16u << 20};

  // Intra-node: single path (1 brick, multipath off) vs 2 bricks + scheduler.
  std::vector<IntraPoint> intra;
  for (const std::size_t s : sizes) {
    osu::BenchConfig single = base(osu::Placement::IntraNode, iters, warmup);
    osu::BenchConfig multi = base(osu::Placement::IntraNode, iters, warmup);
    multi.model.machine.nvlink_bricks = 2;
    multi.model.ucx.multipath.enabled = true;
    intra.push_back({s, median3(single, s), median3(multi, s)});
  }

  // Inter-node: rail striping at 1/2/4 rails, multipath on throughout.
  const int rail_counts[] = {1, 2, 4};
  std::vector<InterPoint> inter;
  for (const std::size_t s : sizes) {
    for (const int rails : rail_counts) {
      osu::BenchConfig cfg = base(osu::Placement::InterNode, iters, warmup);
      cfg.model.machine.nic_rails = rails;
      cfg.model.ucx.multipath.enabled = true;
      inter.push_back({s, rails, median3(cfg, s)});
    }
  }

  // Acceptance (mirrors ISSUE 9): intra speedup >= 1.5x at >= 4 MiB with two
  // usable NVLink routes; inter bandwidth scales with the rail count.
  double min_intra_speedup = 1e30;
  for (const IntraPoint& p : intra)
    if (p.bytes >= (4u << 20))
      min_intra_speedup = std::min(min_intra_speedup, p.multi_MBps / p.single_MBps);
  bool rails_scale = true;
  for (std::size_t i = 0; i + 2 < inter.size(); i += 3) {
    if (inter[i].bytes < (4u << 20)) continue;
    rails_scale = rails_scale && inter[i + 1].MBps > inter[i].MBps * 1.3 &&
                  inter[i + 2].MBps > inter[i + 1].MBps;
  }
  const bool ok = min_intra_speedup >= 1.5 && rails_scale;

  if (json) {
    std::printf("{\n");
    std::printf(
        "  \"description\": \"Multi-path NVLink / multi-rail NIC bandwidth "
        "(hw::PathScheduler): osu_bw device series, summit model, fig12/fig13 variants.\",\n");
    std::printf("  \"methodology\": {\n");
    std::printf("    \"command\": \"./build/bench/ext_multipath --json\",\n");
    std::printf(
        "    \"statistic\": \"median of 3 runs per point; each run an osu_bw window of 64 "
        "with %d iterations after %d warmup on a fresh machine\",\n",
        iters, warmup);
    std::printf(
        "    \"notes\": \"intra compares 1 NVLink brick + multipath off against 2 bricks + "
        "the occupancy-aware chunk scheduler (direct + neighbor-staged route); inter stripes "
        "the rendezvous data leg across 1/2/4 NIC rails. Deterministic simulator: the median "
        "equals every run.\"\n");
    std::printf("  },\n");
    std::printf("  \"acceptance\": {\n");
    std::printf(
        "    \"criterion\": \"intra-node device bandwidth at >= 4 MiB improves >= 1.5x with "
        "2 usable NVLink routes; inter-node bandwidth scales with nic_rails\",\n");
    std::printf("    \"result\": \"min intra speedup %.2fx at 4..16 MiB; rail scaling %s\",\n",
                min_intra_speedup, rails_scale ? "holds" : "FAILS");
    std::printf("    \"ok\": %s\n", ok ? "true" : "false");
    std::printf("  },\n");
    std::printf("  \"intra\": [\n");
    for (std::size_t i = 0; i < intra.size(); ++i) {
      const IntraPoint& p = intra[i];
      std::printf(
          "    {\"bytes\": %zu, \"single_MBps\": %.1f, \"multi_MBps\": %.1f, "
          "\"speedup\": %.3f}%s\n",
          p.bytes, p.single_MBps, p.multi_MBps, p.multi_MBps / p.single_MBps,
          i + 1 < intra.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"inter\": [\n");
    for (std::size_t i = 0; i < inter.size(); ++i) {
      const InterPoint& p = inter[i];
      const double base_MBps = inter[i - i % 3].MBps;
      std::printf(
          "    {\"bytes\": %zu, \"rails\": %d, \"MBps\": %.1f, \"speedup\": %.3f}%s\n",
          p.bytes, p.rails, p.MBps, p.MBps / base_MBps, i + 1 < inter.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return ok ? 0 : 1;
  }

  std::printf("# Extension: multi-path NVLink / multi-rail NIC bandwidth\n");
  std::printf("# osu_bw device series, median of 3, MB/s\n\n");
  std::printf("%-12s %12s %12s %8s\n", "intra bytes", "single", "2-brick", "speedup");
  for (const IntraPoint& p : intra)
    std::printf("%-12zu %12.1f %12.1f %7.2fx\n", p.bytes, p.single_MBps, p.multi_MBps,
                p.multi_MBps / p.single_MBps);
  std::printf("\n%-12s %6s %12s %8s\n", "inter bytes", "rails", "MB/s", "speedup");
  for (std::size_t i = 0; i < inter.size(); ++i)
    std::printf("%-12zu %6d %12.1f %7.2fx\n", inter[i].bytes, inter[i].rails, inter[i].MBps,
                inter[i].MBps / inter[i - i % 3].MBps);
  std::printf("\nmin intra speedup (>= 4 MiB): %.2fx; rail scaling: %s\n", min_intra_speedup,
              rails_scale ? "holds" : "FAILS");
  return ok ? 0 : 1;
}
