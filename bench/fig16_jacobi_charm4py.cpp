#include "jacobi_figures.hpp"

/// Reproduces Figure 16 of the paper: Charm4py Jacobi3D weak and strong
/// scaling, host-staging vs GPU-aware halo exchange.
int main() {
  cux::bench::printJacobiFigure("Figure 16", cux::jacobi::Stack::Charm4py);
  return 0;
}
