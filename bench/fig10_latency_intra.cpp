#include "osu_figures.hpp"

/// Reproduces Figure 10 of the paper: Intra-node latency, host-staging vs GPU-aware.
int main() {
  using namespace cux;
  bench::printFigure("Figure 10", "Intra-node latency, host-staging vs GPU-aware", bench::Metric::Latency,
                     osu::Placement::IntraNode);
  return 0;
}
