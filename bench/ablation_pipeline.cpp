#include <cstdio>

#include "apps/osu/osu.hpp"

/// Ablation: rendezvous pipeline chunk size. UCX stages inter-node GPU data
/// through host memory "in chunks" (paper Sec. IV-B1); the chunk size trades
/// per-chunk management overhead against pipeline ramp-up. This sweep shows
/// the achieved inter-node device bandwidth per chunk size — the default
/// 256 KiB sits near the knee.

int main() {
  using namespace cux;
  std::printf("# Ablation: rendezvous pipeline chunk size — inter-node device bandwidth (MB/s)\n\n");
  const std::size_t chunks[] = {32u << 10, 64u << 10, 128u << 10, 256u << 10, 512u << 10,
                                1u << 20, 4u << 20};
  const std::size_t msg_sizes[] = {256u << 10, 1u << 20, 4u << 20};

  std::printf("%-12s", "chunk");
  for (std::size_t m : msg_sizes) std::printf(" %12zu", m);
  std::printf("   (message size)\n");
  for (std::size_t chunk : chunks) {
    std::printf("%-12zu", chunk);
    for (std::size_t m : msg_sizes) {
      osu::BenchConfig cfg;
      cfg.stack = osu::Stack::Ompi;
      cfg.mode = osu::Mode::Device;
      cfg.place = osu::Placement::InterNode;
      cfg.iters = 10;
      cfg.warmup = 2;
      cfg.model.ucx.rndv_pipeline_chunk = chunk;
      std::printf(" %12.1f", osu::bandwidthPoint(cfg, m));
    }
    std::printf("\n");
  }
  std::printf("\nSmall chunks lose bandwidth to per-chunk management; chunks comparable\n"
              "to the message defeat the pipeline (staging serialises with the wire).\n");
  return 0;
}
