#include "jacobi_figures.hpp"

/// Reproduces Figure 15 of the paper: AMPI Jacobi3D weak and strong scaling
/// with the OpenMPI reference, host-staging vs GPU-aware halo exchange.
int main() {
  cux::bench::printJacobiFigure("Figure 15", cux::jacobi::Stack::Ampi);
  return 0;
}
