#include "osu_figures.hpp"

/// Reproduces Figure 12 of the paper: Intra-node bandwidth, host-staging vs GPU-aware.
int main() {
  using namespace cux;
  bench::printFigure("Figure 12", "Intra-node bandwidth, host-staging vs GPU-aware", bench::Metric::Bandwidth,
                     osu::Placement::IntraNode);
  return 0;
}
