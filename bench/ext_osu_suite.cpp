#include <cstdio>

#include "apps/osu/osu.hpp"

/// Extension bench: the rest of the OSU suite beyond the figures the paper
/// plots — bidirectional bandwidth (osu_bibw) and multi-pair latency
/// (osu_multi_lat) for AMPI and the OpenMPI baseline, GPU-aware vs staged.

int main() {
  using namespace cux;
  auto cfg = [](osu::Stack s, osu::Mode m, osu::Placement p) {
    osu::BenchConfig c;
    c.stack = s;
    c.mode = m;
    c.place = p;
    c.iters = 15;
    c.warmup = 3;
    c.window = 32;
    c.sizes = {4096, 65536, 1u << 20, 4u << 20};
    return c;
  };

  std::printf("# osu_bibw: bidirectional bandwidth (MB/s), inter-node\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "size", "AMPI-H", "AMPI-D", "OpenMPI-H",
              "OpenMPI-D");
  {
    const auto ah = osu::runBiBandwidth(cfg(osu::Stack::Ampi, osu::Mode::HostStaging,
                                            osu::Placement::InterNode));
    const auto ad = osu::runBiBandwidth(cfg(osu::Stack::Ampi, osu::Mode::Device,
                                            osu::Placement::InterNode));
    const auto oh = osu::runBiBandwidth(cfg(osu::Stack::Ompi, osu::Mode::HostStaging,
                                            osu::Placement::InterNode));
    const auto od = osu::runBiBandwidth(cfg(osu::Stack::Ompi, osu::Mode::Device,
                                            osu::Placement::InterNode));
    for (std::size_t i = 0; i < ah.size(); ++i) {
      std::printf("%-10zu %12.1f %12.1f %12.1f %12.1f\n", ah[i].bytes, ah[i].value,
                  ad[i].value, oh[i].value, od[i].value);
    }
  }

  std::printf("\n# osu_multi_lat: average one-way latency (us) with 6 concurrent\n"
              "# pairs across two nodes (full NIC pressure)\n");
  std::printf("%-10s %12s %12s\n", "size", "AMPI-D", "OpenMPI-D");
  {
    const auto a = osu::runMultiLatency(cfg(osu::Stack::Ampi, osu::Mode::Device,
                                            osu::Placement::InterNode));
    const auto o = osu::runMultiLatency(cfg(osu::Stack::Ompi, osu::Mode::Device,
                                            osu::Placement::InterNode));
    for (std::size_t i = 0; i < a.size(); ++i) {
      std::printf("%-10zu %12.2f %12.2f\n", a[i].bytes, a[i].value, o[i].value);
    }
  }
  std::printf("\nBidirectional traffic shares each NVLink/NIC direction pair; multi-pair\n"
              "latency shows NIC serialisation under load.\n");
  return 0;
}
