#include <cstdio>

#include "apps/particles/particles.hpp"

/// Extension bench: the particle-migration proxy — variable-size,
/// data-dependent messages, a pattern the paper's Jacobi3D (fixed-size
/// halos) does not exercise. Host-staging vs GPU-aware exchange across node
/// counts and particle densities.

int main() {
  using namespace cux::particles;
  std::printf("# Extension: particle migration proxy (AMPI, 2D periodic domain)\n");
  std::printf("# ms per step; 2M particles per rank unless noted\n\n");
  auto run = [](int nodes, std::uint64_t per_rank, Mode m) {
    ParticlesConfig cfg;
    cfg.nodes = nodes;
    cfg.particles_per_rank = per_rank;
    cfg.steps = 5;
    cfg.warmup = 1;
    cfg.mode = m;
    cfg.backed = false;
    return runParticles(cfg);
  };

  std::printf("%-6s %12s %12s | %10s %10s %8s\n", "nodes", "overall-H", "overall-D", "comm-H",
              "comm-D", "comm x");
  for (int nodes : {1, 2, 4, 8, 16}) {
    const auto h = run(nodes, 2'000'000, Mode::HostStaging);
    const auto d = run(nodes, 2'000'000, Mode::Device);
    std::printf("%-6d %12.2f %12.2f | %10.2f %10.2f %7.1fx\n", nodes, h.overall_ms_per_step,
                d.overall_ms_per_step, h.comm_ms_per_step, d.comm_ms_per_step,
                h.comm_ms_per_step / d.comm_ms_per_step);
  }

  std::printf("\n# density sweep at 4 nodes (migrant volume scales with count)\n");
  std::printf("%-12s %10s %10s %8s %14s\n", "per-rank", "comm-H", "comm-D", "x",
              "migrants/step");
  for (std::uint64_t n : {100'000ull, 500'000ull, 2'000'000ull, 8'000'000ull}) {
    const auto h = run(4, n, Mode::HostStaging);
    const auto d = run(4, n, Mode::Device);
    std::printf("%-12llu %10.3f %10.3f %7.1fx %14.0f\n",
                static_cast<unsigned long long>(n), h.comm_ms_per_step, d.comm_ms_per_step,
                h.comm_ms_per_step / d.comm_ms_per_step, d.avg_migrants_per_rank_step);
  }
  std::printf("\nVariable-size migrant payloads ride the same GPU-aware path as the\n"
              "fixed-size halos; the improvement factor tracks message size exactly as\n"
              "in the paper's microbenchmarks.\n");
  return 0;
}
