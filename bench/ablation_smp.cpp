#include <cstdio>

#include "apps/osu/osu.hpp"

/// Ablation: SMP vs non-SMP build. The paper pins its whole evaluation to
/// the non-SMP configuration (one PE per process, Sec. IV-A). In the SMP
/// build every network operation of a node funnels through one
/// communication thread; with six GPUs' traffic behind one thread, injection
/// serialisation costs latency and (window) bandwidth — this sweep shows
/// how much.

int main() {
  using namespace cux;
  std::printf("# Ablation: non-SMP (paper's choice) vs SMP comm-thread build\n\n");
  auto run = [](bool smp, bool bw, std::size_t size) {
    osu::BenchConfig cfg;
    cfg.stack = osu::Stack::Ampi;
    cfg.mode = osu::Mode::Device;
    cfg.place = osu::Placement::InterNode;
    cfg.iters = 15;
    cfg.warmup = 3;
    cfg.window = 32;
    cfg.model.costs.smp_comm_thread = smp;
    return bw ? osu::bandwidthPoint(cfg, size) : osu::latencyPoint(cfg, size);
  };
  std::printf("%-10s %14s %14s | %14s %14s\n", "size", "lat non-SMP", "lat SMP",
              "bw non-SMP", "bw SMP");
  for (std::size_t s : {8u, 4096u, 65536u, 1u << 20}) {
    std::printf("%-10zu %14.2f %14.2f | %14.1f %14.1f\n", s, run(false, false, s),
                run(true, false, s), run(false, true, s), run(true, true, s));
  }
  std::printf("\nWith a single ping-pong pair the comm thread adds fixed hops; the real\n"
              "penalty appears when all six PEs of a node inject concurrently (as in\n"
              "Jacobi), which is why the paper evaluates non-SMP.\n");

  // Concurrent pressure: multi-pair latency, where 6 PEs share the thread.
  std::printf("\n# multi-pair (6 concurrent pairs) average one-way latency (us)\n");
  std::printf("%-10s %14s %14s\n", "size", "non-SMP", "SMP");
  for (std::size_t s : {8u, 4096u, 65536u}) {
    auto multi = [&](bool smp) {
      osu::BenchConfig cfg;
      cfg.stack = osu::Stack::Ampi;
      cfg.mode = osu::Mode::Device;
      cfg.place = osu::Placement::InterNode;
      cfg.iters = 15;
      cfg.warmup = 3;
      cfg.model.costs.smp_comm_thread = smp;
      cfg.sizes = {s};
      return osu::runMultiLatency(cfg)[0].value;
    };
    std::printf("%-10zu %14.2f %14.2f\n", s, multi(false), multi(true));
  }
  return 0;
}
