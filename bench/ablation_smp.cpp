#include <chrono>
#include <cstdio>

#include "apps/osu/osu.hpp"
#include "hw/system.hpp"
#include "model/model.hpp"
#include "sim/shard.hpp"

/// Ablation: SMP vs non-SMP build. The paper pins its whole evaluation to
/// the non-SMP configuration (one PE per process, Sec. IV-A). In the SMP
/// build every network operation of a node funnels through one
/// communication thread; with six GPUs' traffic behind one thread, injection
/// serialisation costs latency and (window) bandwidth — this sweep shows
/// how much.
///
/// Two complementary views:
///   1. Modeled (virtual time): what SMP mode costs the *simulated machine*
///      via the comm-thread hop model (smp_comm_thread).
///   2. Measured (wall clock): what SMP mode buys/costs the *simulator
///      itself* when the event loop is sharded across OS threads
///      (sim::ShardedEngine) — events/s at shard counts 1/2/4 on the same
///      deterministic message storm.

int main() {
  using namespace cux;
  std::printf("# Ablation: non-SMP (paper's choice) vs SMP comm-thread build\n\n");
  auto run = [](bool smp, bool bw, std::size_t size) {
    osu::BenchConfig cfg;
    cfg.stack = osu::Stack::Ampi;
    cfg.mode = osu::Mode::Device;
    cfg.place = osu::Placement::InterNode;
    cfg.iters = 15;
    cfg.warmup = 3;
    cfg.window = 32;
    cfg.model.costs.smp_comm_thread = smp;
    return bw ? osu::bandwidthPoint(cfg, size) : osu::latencyPoint(cfg, size);
  };
  std::printf("%-10s %14s %14s | %14s %14s\n", "size", "lat non-SMP", "lat SMP",
              "bw non-SMP", "bw SMP");
  for (std::size_t s : {8u, 4096u, 65536u, 1u << 20}) {
    std::printf("%-10zu %14.2f %14.2f | %14.1f %14.1f\n", s, run(false, false, s),
                run(true, false, s), run(false, true, s), run(true, true, s));
  }
  std::printf("\nWith a single ping-pong pair the comm thread adds fixed hops; the real\n"
              "penalty appears when all six PEs of a node inject concurrently (as in\n"
              "Jacobi), which is why the paper evaluates non-SMP.\n");

  // Concurrent pressure: multi-pair latency, where 6 PEs share the thread.
  std::printf("\n# multi-pair (6 concurrent pairs) average one-way latency (us)\n");
  std::printf("%-10s %14s %14s\n", "size", "non-SMP", "SMP");
  for (std::size_t s : {8u, 4096u, 65536u}) {
    auto multi = [&](bool smp) {
      osu::BenchConfig cfg;
      cfg.stack = osu::Stack::Ampi;
      cfg.mode = osu::Mode::Device;
      cfg.place = osu::Placement::InterNode;
      cfg.iters = 15;
      cfg.warmup = 3;
      cfg.model.costs.smp_comm_thread = smp;
      cfg.sizes = {s};
      return osu::runMultiLatency(cfg)[0].value;
    };
    std::printf("%-10zu %14.2f %14.2f\n", s, multi(false), multi(true));
  }

  // ------------------------------------------------------------------------
  // Measured: sharded simulator wall-clock throughput (events/s) on the
  // deterministic message storm, lookahead derived from the summit model's
  // link latencies. speedup < 1 on a single-core host is expected — the rows
  // then quantify the epoch-barrier coordination overhead alone.
  // ------------------------------------------------------------------------
  std::printf("\n# measured: sharded event loop (message storm, summit(2) latencies)\n");
  std::printf("%-7s %12s %12s %12s %10s %8s %12s\n", "shards", "events", "wall_ms",
              "events_per_s", "speedup", "epochs", "cross_posts");
  double base_ms = 0.0;
  for (int shards : {1, 2, 4}) {
    model::Model m = model::summit(2);
    m.machine.smp_shards = shards;
    hw::System sys(m.machine);
    sim::ShardedEngine se(sys.shardPlan());
    sim::StormConfig storm;
    storm.walkers_per_pe = 8;
    storm.hops = 192;
    const auto t0 = std::chrono::steady_clock::now();
    const sim::StormResult r = sim::runMessageStorm(se, storm, [&sys](int a, int b) {
      return sys.machine.pathLatency(sys.machine.hostToHostPath(a, b));
    });
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (shards == 1) base_ms = ms;
    const double evps = ms > 0.0 ? static_cast<double>(se.eventsProcessed()) / (ms / 1e3) : 0.0;
    std::printf("%-7d %12llu %12.2f %12.0f %10.2f %8llu %12llu\n", shards,
                static_cast<unsigned long long>(se.eventsProcessed()), ms, evps,
                ms > 0.0 ? base_ms / ms : 0.0, static_cast<unsigned long long>(r.epochs),
                static_cast<unsigned long long>(r.cross_posts));
  }
  return 0;
}
