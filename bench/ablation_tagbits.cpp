#include <cstdio>

#include "core/tag_scheme.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "ucx/context.hpp"
#include "charm/charm.hpp"

/// Ablation: the MSG/PE/CNT tag bit split (paper Fig. 3). The default
/// 4/32/28 split supports 2^32 PEs with a 2^28 outstanding-message horizon
/// per PE; "this division can be modified by the user to allocate more bits
/// to one side or the other to accommodate different scaling
/// configurations". This bench shows the capacity trade-off and demonstrates
/// that transfers remain correct under every split, including rapid counter
/// wrap-around with a tiny CNT field.

using namespace cux;

namespace {

/// Runs many sequential device transfers under the given scheme and checks
/// that wrap-around never mismatches a tag.
bool stressScheme(const core::TagScheme& tags, int transfers) {
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  ucx::Context ctx(sys, m.ucx);
  ck::Runtime rt(sys, ctx, m, tags);
  cuda::DeviceBuffer a(sys, 0, 64), b(sys, 1, 64);
  int completed = 0;
  for (int i = 0; i < transfers; ++i) {
    core::CmiDeviceBuffer buf{a.get(), 64, 0};
    rt.startOn(0, [&, i] {
      rt.dev().lrtsSendDevice(0, 1, buf);
      rt.cmi().runOn(1, [&] {
        rt.dev().lrtsRecvDevice(1, core::DeviceRdmaOp{b.get(), 64, buf.tag},
                                core::DeviceRecvType::Raw, [&] { ++completed; });
      });
    });
    sys.engine.run();
  }
  return completed == transfers;
}

}  // namespace

int main() {
  std::printf("# Ablation: tag bit split MSG/PE/CNT (paper Fig. 3)\n\n");
  std::printf("%-12s %20s %22s %10s\n", "split", "max PEs", "counter horizon", "correct");
  const core::TagScheme schemes[] = {
      {4, 16, 44}, {4, 24, 36}, {4, 32, 28},  // default
      {4, 40, 20}, {4, 48, 12}, {4, 56, 4},   // extreme: 16-deep counter
  };
  for (const auto& t : schemes) {
    const bool ok = stressScheme(t, 64);  // 64 transfers wraps the 4-bit counter 4x
    std::printf("%2u/%2u/%-6u %20llu %22llu %10s\n", t.msg_bits, t.pe_bits, t.cnt_bits,
                static_cast<unsigned long long>(t.maxPe()) + 1,
                static_cast<unsigned long long>(t.cntModulus()), ok ? "yes" : "NO");
  }
  std::printf("\nMore PE bits raise the addressable PE count; more CNT bits raise how\n"
              "many transfers per PE can be outstanding before tags could collide.\n"
              "Sequential traffic stays correct even under wrap-around; dense\n"
              "concurrent traffic bounds the safe window by 2^CNT_BITS.\n");
  return 0;
}
