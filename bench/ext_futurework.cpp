#include <cstdio>
#include <cstring>
#include <memory>

#include "converse/converse.hpp"
#include "core/device_comm.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "ucx/am.hpp"
#include "ucx/context.hpp"

/// Extension bench: the two improvements the paper's conclusion proposes
/// (Sec. VI), implemented and measured against the baseline design:
///
///  1. baseline  — the paper's mechanism: GPU payload under a machine
///     generated tag, metadata through a Converse message, receive posted
///     only after the metadata arrives ("a noticeable limitation ... the
///     delay in posting the receive");
///  2. user-tag  — both sides derive the tag from an application value, so
///     the receive is pre-posted before the send even starts;
///  3. active msg — GPU-capable UCX active messages: the receiver-side
///     allocator supplies the destination buffer at match time.
///
/// One-way completion time of a single inter-node device transfer.

using namespace cux;

namespace {

struct Setup {
  Setup() : m(model::summit(2)) {
    m.machine.backed_device_memory = false;
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    cmi = std::make_unique<cmi::Converse>(*sys, *ctx, m.costs);
    dev = std::make_unique<core::DeviceComm>(*cmi);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<cmi::Converse> cmi;
  std::unique_ptr<core::DeviceComm> dev;
};

constexpr int kSrc = 0, kDst = 6;

double baseline(std::size_t n) {
  Setup s;
  cuda::DeviceBuffer a(*s.sys, kSrc, n), b(*s.sys, kDst, n);
  sim::TimePoint done = 0;
  // Metadata handler: posts the receive only when the metadata message
  // arrives (paper Sec. III flow).
  const int h = s.cmi->registerHandler([&](cmi::Message msg) {
    std::uint64_t tag = 0;
    std::memcpy(&tag, msg.payload().data(), 8);
    s.dev->lrtsRecvDevice(kDst, core::DeviceRdmaOp{b.get(), n, tag},
                          core::DeviceRecvType::Charm, [&] { done = s.sys->engine.now(); });
  });
  s.cmi->runOn(kSrc, [&] {
    core::CmiDeviceBuffer buf{a.get(), n, 0};
    s.dev->lrtsSendDevice(kSrc, kDst, buf);
    std::vector<std::byte> meta(8);
    std::memcpy(meta.data(), &buf.tag, 8);
    s.cmi->send(kSrc, kDst, h, std::move(meta));
  });
  s.sys->engine.run();
  return sim::toUs(done);
}

double userTag(std::size_t n) {
  Setup s;
  cuda::DeviceBuffer a(*s.sys, kSrc, n), b(*s.sys, kDst, n);
  sim::TimePoint done = 0;
  constexpr std::uint64_t kTag = 0xC0FFEE;
  // Receive pre-posted before the sender moves: no metadata message at all.
  s.cmi->runOn(kDst, [&] {
    s.dev->lrtsRecvDeviceUserTag(kDst, b.get(), n, kTag, core::DeviceRecvType::Charm,
                                 [&] { done = s.sys->engine.now(); });
  });
  s.cmi->runOn(kSrc, [&] {
    core::CmiDeviceBuffer buf{a.get(), n, 0};
    s.dev->lrtsSendDeviceUserTag(kSrc, kDst, buf, kTag);
  });
  s.sys->engine.run();
  return sim::toUs(done);
}

double activeMessage(std::size_t n) {
  Setup s;
  ucx::ActiveMessages am(*s.ctx);
  cuda::DeviceBuffer a(*s.sys, kSrc, n), b(*s.sys, kDst, n);
  sim::TimePoint done = 0;
  am.registerAm(kDst, /*id=*/1, [&](std::uint64_t, int) { return b.get(); },
                [&](void*, std::uint64_t, int) { done = s.sys->engine.now(); });
  s.cmi->runOn(kSrc, [&] { am.amSend(kSrc, kDst, 1, a.get(), n); });
  s.sys->engine.run();
  return sim::toUs(done);
}

}  // namespace

int main() {
  std::printf("# Extension: the paper's Sec. VI proposals, implemented\n");
  std::printf("# one-way inter-node device transfer completion (us)\n\n");
  std::printf("%-10s %12s %12s %12s %14s\n", "size", "baseline", "user-tag", "active-msg",
              "best saving");
  for (std::size_t n : {8u, 4096u, 65536u, 1u << 20, 4u << 20}) {
    const double base = baseline(n);
    const double ut = userTag(n);
    const double amv = activeMessage(n);
    std::printf("%-10zu %12.2f %12.2f %12.2f %13.1f%%\n", n, base, ut, amv,
                100.0 * (base - std::min(ut, amv)) / base);
  }
  std::printf(
      "\nBoth proposals remove the metadata round trip and the delayed receive\n"
      "post; the gain is a fixed few microseconds, so it matters most for small\n"
      "and mid-sized messages — exactly the regime the paper highlights.\n");
  return 0;
}
