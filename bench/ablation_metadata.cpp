#include <cstdio>

#include "apps/osu/osu.hpp"
#include "hw/cuda.hpp"
#include "ucx/context.hpp"

/// Ablation: the metadata-exchange overhead (paper Sec. IV-B1). The authors
/// isolated the time spent outside UCX by disabling the CmiSend/RecvDevice
/// path and invoking receive handlers directly, finding the raw UCX GPU-GPU
/// transfer at < 2 us and ~8 us of AMPI-specific overhead on top.
///
/// This bench reproduces that decomposition: raw mini-UCX tagged transfer
/// (receive pre-posted, no metadata message) versus the full per-model
/// stacks, for small inter-node device messages.

using namespace cux;

namespace {

double rawUcxLatency(std::size_t bytes, int iters) {
  model::Model m = model::summit(2);
  m.machine.backed_device_memory = false;
  hw::System sys(m.machine);
  ucx::Context ctx(sys, m.ucx);
  cuda::DeviceBuffer a(sys, 0, bytes), b(sys, 6, bytes);

  // Ping-pong driven by completion callbacks directly on the workers —
  // the Converse/Charm++ layers never run.
  int remaining = 2 * iters;
  sim::TimePoint done_at = 0;
  std::function<void(int)> post = [&](int side) {
    void* buf = side == 0 ? a.get() : b.get();
    const int pe = side == 0 ? 0 : 6;
    ctx.worker(pe).tagRecv(buf, bytes, 7, ucx::kFullMask, [&, side](ucx::Request&) {
      if (--remaining == 0) {
        done_at = sys.engine.now();
        return;
      }
      post(side);
      ctx.tagSend(side == 0 ? 0 : 6, side == 0 ? 6 : 0,
                  side == 0 ? a.get() : b.get(), bytes, 7, {});
    });
  };
  post(0);
  post(1);
  ctx.tagSend(0, 6, a.get(), bytes, 7, {});
  sys.engine.run();
  return sim::toUs(done_at) / (2.0 * iters);
}

double stackLatency(osu::Stack s, std::size_t bytes) {
  osu::BenchConfig cfg;
  cfg.stack = s;
  cfg.mode = osu::Mode::Device;
  cfg.place = osu::Placement::InterNode;
  cfg.iters = 20;
  cfg.warmup = 5;
  return osu::latencyPoint(cfg, bytes);
}

}  // namespace

int main() {
  std::printf("# Ablation: metadata-exchange overhead above raw UCX (paper Sec. IV-B1)\n\n");
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "size", "raw UCX", "OpenMPI", "Charm++",
              "AMPI", "Charm4py");
  for (std::size_t bytes : {8u, 64u, 1024u, 4096u}) {
    std::printf("%-10zu %10.2f %10.2f %10.2f %10.2f %10.2f\n", bytes,
                rawUcxLatency(bytes, 20), stackLatency(osu::Stack::Ompi, bytes),
                stackLatency(osu::Stack::Charm, bytes), stackLatency(osu::Stack::Ampi, bytes),
                stackLatency(osu::Stack::Charm4py, bytes));
  }
  const double raw = rawUcxLatency(8, 20);
  const double ampi = stackLatency(osu::Stack::Ampi, 8);
  std::printf("\nAMPI overhead outside UCX at 8 B: %.1f us (paper: ~8 us).\n", ampi - raw);
  std::printf("Raw UCX GPU-GPU transfer: %.1f us (paper: < 2 us plus wire).\n", raw);
  return 0;
}
