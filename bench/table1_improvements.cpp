#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/osu/osu.hpp"

/// Reproduces Table I of the paper: improvement in latency and bandwidth
/// with GPU-aware communication — the min-max range over the 1 B .. 4 MB
/// sweep plus the small-message (eager-protocol) speedup, for each model and
/// placement.

namespace {

using namespace cux;

struct Improvement {
  double lat_min = 0, lat_max = 0, lat_eager = 0;
  double bw_min = 0, bw_max = 0;
};

Improvement measure(osu::Stack stack, osu::Placement place) {
  osu::BenchConfig cfg;
  cfg.stack = stack;
  cfg.place = place;
  cfg.iters = 20;
  cfg.warmup = 5;

  cfg.mode = osu::Mode::HostStaging;
  const auto lat_h = osu::runLatency(cfg);
  auto bw_cfg = cfg;
  const auto bw_h = osu::runBandwidth(bw_cfg);
  cfg.mode = osu::Mode::Device;
  const auto lat_d = osu::runLatency(cfg);
  const auto bw_d = osu::runBandwidth(cfg);

  Improvement imp;
  imp.lat_min = 1e30;
  imp.bw_min = 1e30;
  for (std::size_t i = 0; i < lat_h.size(); ++i) {
    const double r = lat_h[i].value / lat_d[i].value;
    imp.lat_min = std::min(imp.lat_min, r);
    imp.lat_max = std::max(imp.lat_max, r);
    const double b = bw_d[i].value / bw_h[i].value;
    imp.bw_min = std::min(imp.bw_min, b);
    imp.bw_max = std::max(imp.bw_max, b);
  }
  // Eager speedup: smallest message size (deep inside the eager regime).
  imp.lat_eager = lat_h.front().value / lat_d.front().value;
  return imp;
}

}  // namespace

int main() {
  std::printf("# Table I: improvement in latency and bandwidth with GPU-aware communication\n\n");
  const osu::Stack stacks[3] = {osu::Stack::Charm, osu::Stack::Ampi, osu::Stack::Charm4py};
  Improvement intra[3], inter[3];
  for (int i = 0; i < 3; ++i) {
    intra[i] = measure(stacks[i], osu::Placement::IntraNode);
    inter[i] = measure(stacks[i], osu::Placement::InterNode);
  }

  std::printf("%-28s %-30s %-30s\n", "", "Intra-node", "Inter-node");
  std::printf("%-28s %9s %9s %9s  %9s %9s %9s\n", "Improvement / Type", "Charm++", "AMPI",
              "Charm4py", "Charm++", "AMPI", "Charm4py");

  auto range = [](const Improvement& x) {
    static char buf[8][32];
    static int slot = 0;
    char* b = buf[slot = (slot + 1) % 8];
    std::snprintf(b, 32, "%.1fx-%.1fx", x.lat_min, x.lat_max);
    return b;
  };
  std::printf("%-28s", "Latency   Range");
  for (const auto& set : {intra, inter}) {
    for (int i = 0; i < 3; ++i) std::printf(" %9s", range(set[i]));
    std::printf(" ");
  }
  std::printf("\n%-28s", "          Eager");
  for (const auto& set : {intra, inter}) {
    for (int i = 0; i < 3; ++i) std::printf(" %8.1fx", set[i].lat_eager);
    std::printf(" ");
  }
  auto bw_range = [](const Improvement& x) {
    static char buf[8][32];
    static int slot = 0;
    char* b = buf[slot = (slot + 1) % 8];
    std::snprintf(b, 32, "%.1fx-%.1fx", x.bw_min, x.bw_max);
    return b;
  };
  std::printf("\n%-28s", "Bandwidth Range");
  for (const auto& set : {intra, inter}) {
    for (int i = 0; i < 3; ++i) std::printf(" %9s", bw_range(set[i]));
    std::printf(" ");
  }
  std::printf("\n\n# Paper reference (Table I):\n");
  std::printf("# Latency Range:  intra 2.1-10.2x / 1.9-11.7x / 1.8-17.4x;"
              " inter 1.2-4.1x / 1.8-3.5x / 1.5-3.4x\n");
  std::printf("# Latency Eager:  intra 4.4x / 3.6x / 1.9x; inter 4.1x / 3.4x / 1.8x\n");
  std::printf("# Bandwidth Range: intra 1.4-9.6x / 1.3-10.0x / 1.3-10.5x;"
              " inter 1.2-2.7x / 1.3-2.6x / 1.0-1.5x\n");
  return 0;
}
