#include "osu_figures.hpp"

/// Reproduces Figure 13 of the paper: Inter-node bandwidth, host-staging vs GPU-aware.
int main() {
  using namespace cux;
  bench::printFigure("Figure 13", "Inter-node bandwidth, host-staging vs GPU-aware", bench::Metric::Bandwidth,
                     osu::Placement::InterNode);
  return 0;
}
