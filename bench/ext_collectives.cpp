#include <cstdio>
#include <memory>
#include <vector>

#include "coll/coll.hpp"
#include "model/model.hpp"
#include "ompi/ompi.hpp"
#include "ucx/context.hpp"

/// Extension bench (paper Sec. VI future work): GPU-aware collectives
/// translated to point-to-point calls, vs the host-staging alternative an
/// application without them must use (cudaMemcpy D2H, collective on host
/// buffers, cudaMemcpy H2D). Reports allreduce and broadcast completion
/// times across node counts.

using namespace cux;

namespace {

struct Setup {
  explicit Setup(int nodes) : m(model::summit(nodes)) {
    m.machine.backed_device_memory = false;
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    world = std::make_unique<ompi::World>(*sys, *ctx, m.costs);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<ompi::World> world;
};

enum class What { Bcast, Allreduce };

double run(What what, bool gpu_aware, int nodes, std::uint64_t count) {
  Setup s(nodes);
  const int n = s.sys->config.numPes();
  const std::uint64_t bytes = count * 8;
  std::vector<std::unique_ptr<cuda::DeviceBuffer>> dbuf, dout;
  std::vector<std::vector<std::byte>> hbuf(static_cast<std::size_t>(n)),
      hout(static_cast<std::size_t>(n));
  std::vector<std::unique_ptr<cuda::Stream>> streams;
  for (int i = 0; i < n; ++i) {
    dbuf.push_back(std::make_unique<cuda::DeviceBuffer>(*s.sys, i, bytes));
    dout.push_back(std::make_unique<cuda::DeviceBuffer>(*s.sys, i, bytes));
    streams.push_back(std::make_unique<cuda::Stream>(*s.sys, i));
    if (!gpu_aware) {
      hbuf[static_cast<std::size_t>(i)].resize(bytes);
      hout[static_cast<std::size_t>(i)].resize(bytes);
    }
  }

  s.world->run([&](ompi::Rank& r) -> sim::FutureTask {
    const auto i = static_cast<std::size_t>(r.rank());
    if (gpu_aware) {
      if (what == What::Bcast) {
        co_await coll::bcast(r, dbuf[i]->get(), bytes, 0);
      } else {
        co_await coll::allreduce(r, dbuf[i]->get(), dout[i]->get(), count, coll::Op::Sum);
      }
    } else {
      // Host-staged: D2H, host collective, H2D.
      streams[i]->memcpyAsync(hbuf[i].data(), dbuf[i]->get(), bytes,
                              cuda::MemcpyKind::DeviceToHost);
      co_await streams[i]->synchronize();
      if (what == What::Bcast) {
        co_await coll::bcast(r, hbuf[i].data(), bytes, 0);
      } else {
        co_await coll::allreduce(r, hbuf[i].data(), hout[i].data(), count, coll::Op::Sum);
      }
      streams[i]->memcpyAsync(dout[i]->get(), hout[i].data(), bytes,
                              cuda::MemcpyKind::HostToDevice);
      co_await streams[i]->synchronize();
    }
  });
  s.sys->engine.run();
  return sim::toUs(s.sys->engine.now());
}

}  // namespace

int main() {
  std::printf("# Extension: GPU-aware collectives over point-to-point (paper Sec. VI)\n");
  std::printf("# completion time (us), 1 MiB of doubles per rank\n\n");
  const std::uint64_t count = (1u << 20) / 8;
  std::printf("%-6s %12s %12s %8s | %12s %12s %8s\n", "nodes", "bcast-D", "bcast-H", "x",
              "allred-D", "allred-H", "x");
  for (int nodes : {1, 2, 4, 8, 16}) {
    const double bd = run(What::Bcast, true, nodes, count);
    const double bh = run(What::Bcast, false, nodes, count);
    const double ad = run(What::Allreduce, true, nodes, count);
    const double ah = run(What::Allreduce, false, nodes, count);
    std::printf("%-6d %12.1f %12.1f %7.1fx | %12.1f %12.1f %7.1fx\n", nodes, bd, bh, bh / bd,
                ad, ah, ah / ad);
  }
  std::printf("\nGPU-aware collectives inherit the point-to-point advantage; the staged\n"
              "variant pays host copies once per rank plus the slower host wire path.\n");
  return 0;
}
