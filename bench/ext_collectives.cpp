#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "model/model.hpp"
#include "ompi/ompi.hpp"
#include "ucx/context.hpp"

/// Extension bench (paper Sec. VI future work): the pipelined GPU-aware
/// collectives from src/coll vs the host-staging alternative an application
/// without them must use (cudaMemcpy D2H, collective on host buffers,
/// cudaMemcpy H2D).
///
/// Methodology: one persistent world per measurement; every rank runs
/// `warmup + iters` back-to-back collectives (distinct tag slots, so the
/// pipeline stays warm exactly as an application's iteration loop would).
/// The reported figure is the steady-state per-iteration time — the virtual
/// time between the completion of the last warmup iteration and the last
/// measured one, divided by `iters` — so the device and host paths run the
/// identical program shape and only the staging differs (the previous
/// version of this bench timed one cold collective per fresh world, where
/// setup effects and the missing warmup swamped the comparison).
/// Each point is measured 3 times in separate worlds and the median is
/// reported (the simulator is deterministic; the median equals each run —
/// recorded anyway so the numbers are comparable with the real-hardware
/// protocol used across this repo's BENCH files).

using namespace cux;

namespace {

struct Setup {
  explicit Setup(int nodes) : m(model::summit(nodes)) {
    m.machine.backed_device_memory = false;  // timing-only run
    sys = std::make_unique<hw::System>(m.machine);
    ctx = std::make_unique<ucx::Context>(*sys, m.ucx);
    world = std::make_unique<ompi::World>(*sys, *ctx, m.costs);
  }
  model::Model m;
  std::unique_ptr<hw::System> sys;
  std::unique_ptr<ucx::Context> ctx;
  std::unique_ptr<ompi::World> world;
};

enum class What { Bcast, Allreduce };

/// Steady-state per-iteration time (us) for one (collective, impl, path).
double runOnce(What what, coll::CollImpl impl, bool gpu_aware, int nodes, std::uint64_t count,
               int warmup, int iters) {
  Setup s(nodes);
  const int n = s.sys->config.numPes();
  const std::uint64_t bytes = count * 8;
  std::vector<std::unique_ptr<cuda::DeviceBuffer>> dbuf, dout;
  std::vector<std::vector<std::byte>> hbuf(static_cast<std::size_t>(n)),
      hout(static_cast<std::size_t>(n));
  std::vector<std::unique_ptr<cuda::Stream>> streams;
  for (int i = 0; i < n; ++i) {
    dbuf.push_back(std::make_unique<cuda::DeviceBuffer>(*s.sys, i, bytes));
    dout.push_back(std::make_unique<cuda::DeviceBuffer>(*s.sys, i, bytes));
    streams.push_back(std::make_unique<cuda::Stream>(*s.sys, i));
    if (!gpu_aware) {
      hbuf[static_cast<std::size_t>(i)].resize(bytes);
      hout[static_cast<std::size_t>(i)].resize(bytes);
    }
  }

  const int total = warmup + iters;
  std::vector<int> left(static_cast<std::size_t>(total), n);
  std::vector<sim::TimePoint> done(static_cast<std::size_t>(total), 0);
  coll::CollConfig cfg;
  cfg.impl = impl;

  s.world->run([&](ompi::Rank& r) -> sim::FutureTask {
    const auto i = static_cast<std::size_t>(r.rank());
    for (int it = 0; it < total; ++it) {
      const int tag = coll::collTag(it);  // distinct tag space per iteration
      if (gpu_aware) {
        if (what == What::Bcast) {
          co_await coll::bcast(r, dbuf[i]->get(), bytes, 0, tag, cfg);
        } else {
          co_await coll::allreduce(r, dbuf[i]->get(), dout[i]->get(), count, coll::Op::Sum,
                                   tag, cfg);
        }
      } else {
        // Host-staged: D2H, the same collective on host buffers, H2D.
        streams[i]->memcpyAsync(hbuf[i].data(), dbuf[i]->get(), bytes,
                                cuda::MemcpyKind::DeviceToHost);
        co_await streams[i]->synchronize();
        if (what == What::Bcast) {
          co_await coll::bcast(r, hbuf[i].data(), bytes, 0, tag, cfg);
        } else {
          co_await coll::allreduce(r, hbuf[i].data(), hout[i].data(), count, coll::Op::Sum,
                                   tag, cfg);
        }
        streams[i]->memcpyAsync(dout[i]->get(), hout[i].data(), bytes,
                                cuda::MemcpyKind::HostToDevice);
        co_await streams[i]->synchronize();
      }
      const auto slot = static_cast<std::size_t>(it);
      if (--left[slot] == 0) done[slot] = s.sys->engine.now();
    }
  });
  s.sys->engine.run();
  const auto first = static_cast<std::size_t>(warmup - 1);
  const auto last = static_cast<std::size_t>(total - 1);
  return sim::toUs(done[last] - done[first]) / iters;
}

double median3(What what, coll::CollImpl impl, bool gpu_aware, int nodes, std::uint64_t count,
               int warmup, int iters) {
  double t[3];
  for (double& v : t) v = runOnce(what, impl, gpu_aware, nodes, count, warmup, iters);
  std::sort(t, t + 3);
  return t[1];
}

struct Point {
  const char* op;
  coll::CollImpl impl;
  std::uint64_t bytes;
  double device_us;
  double host_us;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int nodes = 2;
  int iters = 3;
  const int warmup = 1;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--json") == 0) json = true;
    if (std::strcmp(argv[a], "--nodes") == 0 && a + 1 < argc) nodes = std::atoi(argv[++a]);
    if (std::strcmp(argv[a], "--iters") == 0 && a + 1 < argc) iters = std::atoi(argv[++a]);
  }

  const std::vector<std::uint64_t> sizes = {64u << 10, 256u << 10, 1u << 20, 4u << 20,
                                            16u << 20};
  const std::vector<std::pair<What, const char*>> ops = {{What::Allreduce, "allreduce"},
                                                         {What::Bcast, "bcast"}};
  const std::vector<coll::CollImpl> impls = {coll::CollImpl::Ring, coll::CollImpl::Tree,
                                             coll::CollImpl::Reference};
  std::vector<Point> points;
  for (const auto& [what, opname] : ops) {
    for (const coll::CollImpl impl : impls) {
      for (const std::uint64_t bytes : sizes) {
        const std::uint64_t count = bytes / 8;
        Point p{opname, impl, bytes, 0, 0};
        p.device_us = median3(what, impl, true, nodes, count, warmup, iters);
        p.host_us = median3(what, impl, false, nodes, count, warmup, iters);
        points.push_back(p);
      }
    }
  }

  // Acceptance: the chunked device-path allreduce beats host staging at
  // every size >= 1 MiB for both pipelined impls.
  double min_speedup = 1e30;
  for (const Point& p : points) {
    if (std::strcmp(p.op, "allreduce") != 0 || p.impl == coll::CollImpl::Reference) continue;
    if (p.bytes < (1u << 20)) continue;
    min_speedup = std::min(min_speedup, p.host_us / p.device_us);
  }

  if (json) {
    std::printf("{\n");
    std::printf(
        "  \"description\": \"Pipelined GPU-aware collectives (src/coll) vs host-staged "
        "emulation, %d-node summit model (%d ranks), steady-state per-iteration time.\",\n",
        nodes, 6 * nodes);
    std::printf("  \"methodology\": {\n");
    std::printf("    \"command\": \"./build/bench/ext_collectives --json\",\n");
    std::printf(
        "    \"statistic\": \"median of 3 worlds; per world, mean of %d warm iterations "
        "after %d warmup (persistent ranks, distinct tag slot per iteration)\",\n",
        iters, warmup);
    std::printf(
        "    \"notes\": \"device and host paths run the identical iteration loop; the host "
        "path adds D2H before and H2D after each collective and reduces on host buffers. "
        "The simulator is deterministic, so the median equals every run.\"\n");
    std::printf("  },\n");
    std::printf("  \"acceptance\": {\n");
    std::printf(
        "    \"criterion\": \"chunked device-path allreduce beats host-staged at >= 1 "
        "MiB\",\n");
    std::printf("    \"result\": \"min speedup %.2fx over ring+tree at 1..16 MiB\"\n",
                min_speedup);
    std::printf("  },\n");
    std::printf("  \"results\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::printf(
          "    {\"op\": \"%s\", \"impl\": \"%s\", \"bytes\": %llu, \"device_us\": %.2f, "
          "\"host_us\": %.2f, \"speedup\": %.2f}%s\n",
          p.op, coll::name(p.impl), static_cast<unsigned long long>(p.bytes), p.device_us,
          p.host_us, p.host_us / p.device_us, i + 1 < points.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  std::printf("# Extension: pipelined GPU-aware collectives vs host staging\n");
  std::printf("# %d nodes (%d ranks), steady-state us/iteration, median of 3\n\n", nodes,
              6 * nodes);
  std::printf("%-10s %-10s %10s %12s %12s %8s\n", "op", "impl", "bytes", "device", "host",
              "speedup");
  for (const Point& p : points) {
    std::printf("%-10s %-10s %10llu %12.1f %12.1f %7.2fx\n", p.op, coll::name(p.impl),
                static_cast<unsigned long long>(p.bytes), p.device_us, p.host_us,
                p.host_us / p.device_us);
  }
  std::printf("\nmin device speedup (allreduce, ring/tree, >= 1 MiB): %.2fx\n", min_speedup);
  return 0;
}
