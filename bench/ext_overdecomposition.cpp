#include <cstdio>

#include "apps/jacobi/jacobi.hpp"

/// Extension bench (paper Sec. VI future work, ref. [23]): computation-
/// communication overlap through overdecomposition. With more chares than
/// PEs, the Charm++ scheduler runs one block's stencil while another block
/// of the same GPU waits for halos; kernels serialise on the per-GPU compute
/// engine, so the benefit shown is pure overlap, not extra parallelism.
///
/// The paper's own evaluation pins odf = 1 to isolate communication; this
/// bench shows what its proposed follow-up buys.

int main() {
  using namespace cux::jacobi;
  std::printf("# Extension: overdecomposition overlap — Charm++ Jacobi3D, GPU-aware halos\n");
  std::printf("# 1536^3 doubles, weak-scaled; overall ms/iteration by overdecomposition factor\n\n");
  std::printf("%-6s", "nodes");
  for (int odf : {1, 2, 4, 8}) std::printf("   odf=%-7d", odf);
  std::printf("best speedup\n");
  for (int e : {0, 2, 4}) {
    const int nodes = 1 << e;
    std::printf("%-6d", nodes);
    double base = 0, best = 1e30;
    for (int odf : {1, 2, 4, 8}) {
      JacobiConfig cfg;
      cfg.stack = Stack::Charm;
      cfg.mode = Mode::Device;
      cfg.nodes = nodes;
      cfg.grid = weakScaledGrid(kWeakBase, e);
      cfg.iters = 4;
      cfg.warmup = 1;
      cfg.backed = false;
      cfg.overdecomposition = odf;
      const auto r = runJacobi(cfg);
      if (odf == 1) base = r.overall_ms_per_iter;
      best = std::min(best, r.overall_ms_per_iter);
      std::printf(" %10.2f ", r.overall_ms_per_iter);
    }
    std::printf(" %10.2fx\n", base / best);
  }
  std::printf("\nOverdecomposition hides halo latency behind other blocks' stencils; the\n"
              "gain is bounded by the comm/compute ratio and per-chare overheads.\n");
  return 0;
}
