#include <benchmark/benchmark.h>

#include "core/tag_scheme.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "ucx/context.hpp"

/// Real-time (wall-clock) performance of the simulator's hot paths with
/// google-benchmark: event-queue throughput, tag matching, memory
/// classification, and end-to-end simulated messages per second. These are
/// the costs a user of this library actually pays to run the figure benches.

using namespace cux;

namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::SplitMix64 rng(7);
    for (int i = 0; i < n; ++i) {
      e.schedule(rng.below(1'000'000), [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_TagSchemeMakeDecode(benchmark::State& state) {
  core::TagScheme t;
  sim::SplitMix64 rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const auto tag = t.make(core::MsgType::Device, rng.below(1u << 20), rng.below(1u << 20));
    acc += t.peOf(tag) + t.cntOf(tag) + static_cast<std::uint64_t>(t.typeOf(tag));
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagSchemeMakeDecode);

void BM_MemoryClassification(benchmark::State& state) {
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  std::vector<void*> ptrs;
  for (int i = 0; i < 256; ++i) {
    ptrs.push_back(cuda::deviceAlloc(sys, i % 6, 4096, false));
  }
  sim::SplitMix64 rng(3);
  int hits = 0;
  for (auto _ : state) {
    hits += sys.memory.isDevice(ptrs[rng.below(ptrs.size())]) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  for (void* p : ptrs) cuda::deviceFree(sys, p);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryClassification);

void BM_UcxTagMatching(benchmark::State& state) {
  // Posts N receives, delivers N matching messages; measures matcher cost.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    model::Model m = model::summit(1);
    hw::System sys(m.machine);
    ucx::Context ctx(sys, m.ucx);
    std::vector<std::byte> buf(64);
    for (int i = 0; i < n; ++i) {
      ctx.worker(1).tagRecv(buf.data(), 64, static_cast<ucx::Tag>(i), ucx::kFullMask, {});
    }
    std::vector<std::byte> src(64);
    for (int i = n - 1; i >= 0; --i) {  // worst case: match at the queue tail
      ctx.tagSend(0, 1, src.data(), 64, static_cast<ucx::Tag>(i), {});
    }
    sys.engine.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UcxTagMatching)->Arg(64)->Arg(512);

void BM_SimulatedMessagesPerSecond(benchmark::State& state) {
  // End-to-end: how many simulated eager messages the whole stack retires
  // per wall-clock second.
  for (auto _ : state) {
    model::Model m = model::summit(2);
    hw::System sys(m.machine);
    ucx::Context ctx(sys, m.ucx);
    std::vector<std::byte> src(256), dst(256);
    constexpr int kMsgs = 1000;
    int done = 0;
    for (int i = 0; i < kMsgs; ++i) {
      ctx.worker(6).tagRecv(dst.data(), 256, static_cast<ucx::Tag>(i), ucx::kFullMask,
                            [&done](ucx::Request&) { ++done; });
      ctx.tagSend(0, 6, src.data(), 256, static_cast<ucx::Tag>(i), {});
    }
    sys.engine.run();
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(kMsgs);
  }
}
BENCHMARK(BM_SimulatedMessagesPerSecond);

}  // namespace

BENCHMARK_MAIN();
