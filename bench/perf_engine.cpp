#include <benchmark/benchmark.h>

#include "core/tag_scheme.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"
#include "ucx/context.hpp"

/// Real-time (wall-clock) performance of the simulator's hot paths with
/// google-benchmark: event-queue throughput under the schedule/cancel mixes
/// the communication layers actually generate, tag matching, memory
/// classification, and end-to-end simulated messages per second. These are
/// the costs a user of this library actually pays to run the figure benches.
///
/// The engine cases feed BENCH_engine.json (see EXPERIMENTS.md): run with
///   perf_engine --benchmark_filter=BM_Engine --benchmark_format=json
/// before and after touching src/sim/engine.* and record both.

using namespace cux;

namespace {

// --------------------------------------------------------------------------
// Event-engine throughput
// --------------------------------------------------------------------------

/// Schedule-heavy mix: N events at random times, zero cancellations. This is
/// the common case — the figure benches cancel nothing.
void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::SplitMix64 rng(7);
    for (int i = 0; i < n; ++i) {
      e.schedule(rng.below(1'000'000), [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(16384)->Arg(131072);

/// Schedule with a payload capture the size of a completion continuation
/// (request pointer + completion function), the dominant event shape in
/// ucx.cpp; exercises the callback type's small-buffer path.
void BM_EngineScheduleRunCapture(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  struct FakeReq {
    std::uint64_t a = 0, b = 0;
  };
  auto req = std::make_shared<FakeReq>();
  std::uint64_t sink = 0;
  std::function<void(FakeReq&)> cb = [&sink](FakeReq& r) { sink += r.a; };
  for (auto _ : state) {
    sim::Engine e;
    sim::SplitMix64 rng(11);
    for (int i = 0; i < n; ++i) {
      e.schedule(rng.below(1'000'000), [req, cb] {
        req->a++;
        cb(*req);
      });
    }
    e.run();
    benchmark::DoNotOptimize(e.eventsProcessed());
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRunCapture)->Arg(16384);

/// Timeout-style mix: a fraction of events is cancelled before it fires
/// (retransmit timers, cancelled receives). Arg0 = events, Arg1 = percent
/// cancelled.
void BM_EngineScheduleCancelMix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int pct = static_cast<int>(state.range(1));
  for (auto _ : state) {
    sim::Engine e;
    sim::SplitMix64 rng(13);
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(e.schedule(rng.below(1'000'000), [] {}));
    }
    for (int i = 0; i < n; ++i) {
      if (static_cast<int>(rng.below(100)) < pct) e.cancel(ids[static_cast<std::size_t>(i)]);
    }
    e.run();
    benchmark::DoNotOptimize(e.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleCancelMix)->Args({16384, 10})->Args({16384, 50})->Args({16384, 90});

/// Cancel-and-reschedule churn: every event is immediately replaced, the
/// worst case for cancellation bookkeeping (progress-timer resets).
void BM_EngineRescheduleChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::SplitMix64 rng(17);
    sim::EventId id = e.schedule(1, [] {});
    for (int i = 0; i < n; ++i) {
      e.cancel(id);
      id = e.schedule(rng.below(1'000'000), [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRescheduleChurn)->Arg(16384);

/// Fan-out cascade: each fired event schedules `fan` children for two
/// generations — the shape of a Jacobi halo exchange (one entry method
/// scheduling per-neighbour sends) or an OSU bandwidth window.
void BM_EngineFanout(benchmark::State& state) {
  const int roots = static_cast<int>(state.range(0));
  const int fan = static_cast<int>(state.range(1));
  for (auto _ : state) {
    sim::Engine e;
    for (int r = 0; r < roots; ++r) {
      e.schedule(static_cast<sim::TimePoint>(r), [&e, fan] {
        for (int c = 0; c < fan; ++c) {
          e.after(static_cast<sim::Duration>(c + 1), [&e, fan] {
            for (int g = 0; g < fan; ++g) {
              e.after(static_cast<sim::Duration>(g + 1), [] {});
            }
          });
        }
      });
    }
    e.run();
    benchmark::DoNotOptimize(e.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * roots * (1 + fan + fan * fan));
}
BENCHMARK(BM_EngineFanout)->Args({256, 6})->Args({64, 16});

/// Self-rescheduling chain: serialised-PE-style execution where each event
/// schedules its successor; measures bare per-event latency (queue nearly
/// empty, no batching effects).
void BM_EngineChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    int remaining = n;
    std::function<void()> step = [&] {
      if (--remaining > 0) e.after(1, step);
    };
    e.schedule(0, step);
    e.run();
    benchmark::DoNotOptimize(e.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineChain)->Arg(16384);

/// SMP-mode sharded engine driving the deterministic message storm at
/// varying shard counts (Arg0 = shards; shards=1 is the classic
/// single-threaded engine with zero coordination overhead, the baseline the
/// multi-shard rows are compared against). Measured in wall-clock time
/// (UseRealTime) because the work spreads across shard threads; on a
/// single-core host the multi-shard rows show pure coordination overhead
/// rather than speedup — see the methodology note in BENCH_engine.json.
void BM_ShardedEngineStorm(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int pes = 8;
  sim::StormConfig cfg;
  cfg.walkers_per_pe = 4;
  cfg.hops = 64;
  const auto latency = [](int a, int b) {
    return static_cast<sim::Duration>(50 + 7 * ((a * 13 + b * 31) % 6));
  };
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    sim::ShardPlan plan;
    plan.shards = shards;
    plan.num_pes = pes;
    plan.lookahead = 50;  // == min latency, the tightest safe window
    sim::ShardedEngine se(plan);
    const sim::StormResult r = sim::runMessageStorm(se, cfg, latency);
    deliveries = r.deliveries;
    benchmark::DoNotOptimize(r.hash);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(deliveries));
}
BENCHMARK(BM_ShardedEngineStorm)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --------------------------------------------------------------------------
// Protocol-layer hot paths
// --------------------------------------------------------------------------

void BM_TagSchemeMakeDecode(benchmark::State& state) {
  core::TagScheme t;
  sim::SplitMix64 rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const auto tag = t.make(core::MsgType::Device, rng.below(1u << 20), rng.below(1u << 20));
    acc += t.peOf(tag) + t.cntOf(tag) + static_cast<std::uint64_t>(t.typeOf(tag));
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagSchemeMakeDecode);

void BM_MemoryClassification(benchmark::State& state) {
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  std::vector<void*> ptrs;
  for (int i = 0; i < 256; ++i) {
    ptrs.push_back(cuda::deviceAlloc(sys, i % 6, 4096, false));
  }
  sim::SplitMix64 rng(3);
  int hits = 0;
  for (auto _ : state) {
    hits += sys.memory.isDevice(ptrs[rng.below(ptrs.size())]) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  for (void* p : ptrs) cuda::deviceFree(sys, p);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryClassification);

// The matcher benches run both engines (BENCH_ucx_matching.json): `bucketed`
// is the production matcher with the pooled message path, `linear` the
// retained reference matcher (pools still on, isolating matcher cost), and
// `linear_nopool` the seed-equivalent configuration — linear scans plus a
// fresh heap allocation per request/payload — i.e. the "before" numbers on
// the same fixed harness. Setup (System/Context construction) is hoisted out
// of the timing loop; every iteration fully drains the queues, so one
// Context serves all iterations. Each send is drained through the engine
// immediately (steady-state matching at depth N), so the event heap stays
// shallow and the measurement isolates the matcher instead of the engine's
// O(log pending) heap under an 8k-event burst.

/// Posted-queue depth: posts N exact receives, then delivers N matching
/// messages in reverse tag order (each arrival's match sits at the tail of a
/// post-ordered scan — the linear matcher's worst case, the bucketed
/// matcher's common case).
void BM_UcxTagMatching(benchmark::State& state, ucx::MatcherImpl impl, bool pooling) {
  const int n = static_cast<int>(state.range(0));
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  ucx::UcxConfig cfg = m.ucx;
  cfg.matcher = impl;
  cfg.pooling = pooling;
  ucx::Context ctx(sys, cfg);
  std::vector<std::byte> buf(64);
  std::vector<std::byte> src(64);
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      ctx.worker(1).tagRecv(buf.data(), 64, static_cast<ucx::Tag>(i), ucx::kFullMask, {});
    }
    for (int i = n - 1; i >= 0; --i) {
      ctx.tagSend(0, 1, src.data(), 64, static_cast<ucx::Tag>(i), {});
      sys.engine.run();
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_UcxTagMatching, bucketed, ucx::MatcherImpl::Bucketed, true)
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Arg(16384);
BENCHMARK_CAPTURE(BM_UcxTagMatching, linear, ucx::MatcherImpl::Linear, true)
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Arg(16384);
BENCHMARK_CAPTURE(BM_UcxTagMatching, linear_nopool, ucx::MatcherImpl::Linear, false)
    ->Arg(4096)
    ->Arg(16384);

/// Unexpected-queue-heavy: all N messages arrive before any receive is
/// posted, so every tagRecv scans/probes the unexpected queue. Receives are
/// posted in reverse arrival order (linear worst case).
void BM_UcxTagMatchingUnexpected(benchmark::State& state, ucx::MatcherImpl impl, bool pooling) {
  const int n = static_cast<int>(state.range(0));
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  ucx::UcxConfig cfg = m.ucx;
  cfg.matcher = impl;
  cfg.pooling = pooling;
  ucx::Context ctx(sys, cfg);
  std::vector<std::byte> buf(64);
  std::vector<std::byte> src(64);
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      ctx.tagSend(0, 1, src.data(), 64, static_cast<ucx::Tag>(i), {});
      sys.engine.run();  // message lands in the unexpected queue
    }
    for (int i = n - 1; i >= 0; --i) {
      ctx.worker(1).tagRecv(buf.data(), 64, static_cast<ucx::Tag>(i), ucx::kFullMask, {});
      sys.engine.run();  // drain the matched completion
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_UcxTagMatchingUnexpected, bucketed, ucx::MatcherImpl::Bucketed, true)
    ->Arg(512)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_UcxTagMatchingUnexpected, linear, ucx::MatcherImpl::Linear, true)
    ->Arg(512)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_UcxTagMatchingUnexpected, linear_nopool, ucx::MatcherImpl::Linear, false)
    ->Arg(4096);

/// Wildcard mix: 7 of 8 receives are exact, 1 of 8 uses a masked wildcard
/// (low tag bits) that only its own tag class can match. Exercises the
/// exact-vs-wildcard sequence arbitration on every arrival.
void BM_UcxTagMatchingWildcardMix(benchmark::State& state, ucx::MatcherImpl impl, bool pooling) {
  const int n = static_cast<int>(state.range(0));
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  ucx::UcxConfig cfg = m.ucx;
  cfg.matcher = impl;
  cfg.pooling = pooling;
  ucx::Context ctx(sys, cfg);
  std::vector<std::byte> buf(64);
  std::vector<std::byte> src(64);
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      // Wildcard (mask 0x7) matches exactly the tags congruent to 0 mod 8,
      // so every receive consumes one message and the queues drain fully.
      const ucx::Tag mask = (i % 8 == 0) ? ucx::Tag{0x7} : ucx::kFullMask;
      ctx.worker(1).tagRecv(buf.data(), 64, static_cast<ucx::Tag>(i), mask, {});
    }
    for (int i = n - 1; i >= 0; --i) {
      ctx.tagSend(0, 1, src.data(), 64, static_cast<ucx::Tag>(i), {});
      sys.engine.run();
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_UcxTagMatchingWildcardMix, bucketed, ucx::MatcherImpl::Bucketed, true)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_UcxTagMatchingWildcardMix, linear, ucx::MatcherImpl::Linear, true)->Arg(4096);
BENCHMARK_CAPTURE(BM_UcxTagMatchingWildcardMix, linear_nopool, ucx::MatcherImpl::Linear, false)
    ->Arg(4096);

/// Cancellation at depth: posts N receives and cancels them all. The
/// bucketed matcher unlinks each in O(1) through the request back-pointer;
/// the linear matcher pays an O(posted) scan per cancel.
void BM_UcxCancelRecv(benchmark::State& state, ucx::MatcherImpl impl, bool pooling) {
  const int n = static_cast<int>(state.range(0));
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  ucx::UcxConfig cfg = m.ucx;
  cfg.matcher = impl;
  cfg.pooling = pooling;
  ucx::Context ctx(sys, cfg);
  std::vector<std::byte> buf(64);
  std::vector<ucx::RequestPtr> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      reqs.push_back(
          ctx.worker(1).tagRecv(buf.data(), 64, static_cast<ucx::Tag>(i), ucx::kFullMask, {}));
    }
    // Cancel in reverse post order: each target sits at the tail of the
    // remaining posted list, so the linear matcher pays its full O(posted)
    // scan per cancel while the bucketed matcher unlinks via the slot
    // back-pointer without scanning.
    for (auto it = reqs.rbegin(); it != reqs.rend(); ++it) ctx.worker(1).cancelRecv(*it);
    reqs.clear();
    sys.engine.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_UcxCancelRecv, bucketed, ucx::MatcherImpl::Bucketed, true)->Arg(4096);
BENCHMARK_CAPTURE(BM_UcxCancelRecv, linear, ucx::MatcherImpl::Linear, true)->Arg(4096);
BENCHMARK_CAPTURE(BM_UcxCancelRecv, linear_nopool, ucx::MatcherImpl::Linear, false)->Arg(4096);

void BM_SimulatedMessagesPerSecond(benchmark::State& state, ucx::MatcherImpl impl, bool pooling) {
  // End-to-end: how many simulated eager messages the whole stack retires
  // per wall-clock second. Setup is hoisted so the per-message cost (matcher
  // + pools + engine) is what's measured.
  model::Model m = model::summit(2);
  hw::System sys(m.machine);
  ucx::UcxConfig cfg = m.ucx;
  cfg.matcher = impl;
  cfg.pooling = pooling;
  ucx::Context ctx(sys, cfg);
  std::vector<std::byte> src(256), dst(256);
  constexpr int kMsgs = 1000;
  int done = 0;
  for (auto _ : state) {
    for (int i = 0; i < kMsgs; ++i) {
      ctx.worker(6).tagRecv(dst.data(), 256, static_cast<ucx::Tag>(i), ucx::kFullMask,
                            [&done](ucx::Request&) { ++done; });
      ctx.tagSend(0, 6, src.data(), 256, static_cast<ucx::Tag>(i), {});
    }
    sys.engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK_CAPTURE(BM_SimulatedMessagesPerSecond, bucketed, ucx::MatcherImpl::Bucketed, true);
BENCHMARK_CAPTURE(BM_SimulatedMessagesPerSecond, linear, ucx::MatcherImpl::Linear, true);
BENCHMARK_CAPTURE(BM_SimulatedMessagesPerSecond, linear_nopool, ucx::MatcherImpl::Linear, false);

}  // namespace

BENCHMARK_MAIN();
