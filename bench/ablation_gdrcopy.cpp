#include <cstdio>

#include "apps/osu/osu.hpp"

/// Ablation: GDRCopy detection (paper Sec. IV-B1 — "the detection of the
/// GDRCopy library by UCX is essential in order to achieve low latencies
/// with small messages, which is not included in the default library search
/// path on Summit"). Runs the small-message device latency sweep with the
/// library detected vs not; the fallback stages through cudaMemcpy.

int main() {
  using namespace cux;
  std::printf("# Ablation: GDRCopy detected vs not — inter-node device latency (us)\n\n");
  std::printf("%-10s", "size");
  for (const char* s : {"Charm++/gdr", "Charm++/none", "OpenMPI/gdr", "OpenMPI/none"}) {
    std::printf(" %14s", s);
  }
  std::printf("\n");

  const std::size_t sizes[] = {1, 8, 64, 512, 4096};
  for (std::size_t size : sizes) {
    std::printf("%-10zu", size);
    for (osu::Stack stack : {osu::Stack::Charm, osu::Stack::Ompi}) {
      for (bool gdr : {true, false}) {
        osu::BenchConfig cfg;
        cfg.stack = stack;
        cfg.mode = osu::Mode::Device;
        cfg.place = osu::Placement::InterNode;
        cfg.iters = 20;
        cfg.warmup = 5;
        cfg.model.ucx.gdrcopy_enabled = gdr;
        std::printf(" %14.2f", osu::latencyPoint(cfg, size));
      }
    }
    std::printf("\n");
  }
  std::printf("\nWithout GDRCopy, each small message pays a cudaMemcpy staging round\n"
              "trip; the paper observed the same cliff when the library was missing\n"
              "from Summit's default search path.\n");
  return 0;
}
