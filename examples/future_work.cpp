/// The paper's Section VI, runnable: both improvements its conclusion
/// proposes for the metadata-exchange limitation ("the delay in posting the
/// receive caused by the need to wait for the host-side message").
///
///  * user-provided tags — sender and receiver agree on a tag value, so the
///    receive is pre-posted before any metadata travels;
///  * GPU-capable active messages — the receiver registers an allocator, so
///    even an unannounced rendezvous payload starts moving at RTS arrival.
///
/// Build & run:  ./build/examples/future_work

#include <cstdio>
#include <cstring>

#include "converse/converse.hpp"
#include "core/device_comm.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "ucx/am.hpp"
#include "ucx/context.hpp"

using namespace cux;

int main() {
  model::Model m = model::summit(2);
  hw::System sys(m.machine);
  ucx::Context ucx(sys, m.ucx);
  cmi::Converse cmi(sys, ucx, m.costs);
  core::DeviceComm dev(cmi);
  ucx::ActiveMessages am(ucx);

  constexpr std::size_t kBytes = 256 * 1024;
  cuda::DeviceBuffer src(sys, 0, kBytes), dst_tag(sys, 6, kBytes), dst_am(sys, 6, kBytes);
  std::memset(src.get(), 0x42, kBytes);

  // --- user-provided tags: receive posted BEFORE the send exists ----------
  sim::TimePoint tag_done = 0;
  cmi.runOn(6, [&] {
    dev.lrtsRecvDeviceUserTag(6, dst_tag.get(), kBytes, /*user_tag=*/0xBEEF,
                              core::DeviceRecvType::Charm,
                              [&] { tag_done = sys.engine.now(); });
    std::printf("[pe 6] receive pre-posted under user tag 0xBEEF at t=%.2f us\n",
                sim::toUs(sys.engine.now()));
  });
  cmi.runOn(0, [&] {
    core::CmiDeviceBuffer buf{src.get(), kBytes, 0};
    dev.lrtsSendDeviceUserTag(0, 6, buf, 0xBEEF);
    std::printf("[pe 0] send issued; no metadata message needed\n");
  });
  sys.engine.run();
  std::printf("user-tag transfer complete at t=%.2f us (integrity %s)\n\n",
              sim::toUs(tag_done),
              std::memcmp(src.get(), dst_tag.get(), kBytes) == 0 ? "OK" : "FAILED");

  // --- active messages: allocator supplies the buffer at match time -------
  sim::TimePoint am_start = sys.engine.now();
  sim::TimePoint am_done = 0;
  am.registerAm(6, /*id=*/7,
                [&](std::uint64_t len, int from) {
                  std::printf("[pe 6] AM allocator: %llu bytes from pe %d at t=%.2f us\n",
                              static_cast<unsigned long long>(len), from,
                              sim::toUs(sys.engine.now()));
                  return dst_am.get();
                },
                [&](void*, std::uint64_t, int) { am_done = sys.engine.now(); });
  cmi.runOn(0, [&] { am.amSend(0, 6, 7, src.get(), kBytes); });
  sys.engine.run();
  std::printf("active-message transfer complete in %.2f us (integrity %s)\n",
              sim::toUs(am_done - am_start),
              std::memcmp(src.get(), dst_am.get(), kBytes) == 0 ? "OK" : "FAILED");
  std::printf("\nRun ./build/bench/ext_futurework for the quantified comparison\n"
              "against the paper's baseline metadata-exchange design.\n");
  return 0;
}
