/// Charm4py-style channels: GPU-aware vs host-staging exchange.
///
/// A C++ rendering of the paper's Fig. 8: two chares establish a channel and
/// exchange GPU data either directly (gpu_direct) or staged through host
/// memory with explicit charm.lib CUDA copies. Every channel call pays the
/// modelled Python/Cython overhead, so the printed timings show both the
/// staging cost and the interpreter tax.
///
/// Build & run:  ./build/examples/charm4py_channels

#include <cstdio>
#include <cstring>

#include "charm4py/charm4py.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "ucx/context.hpp"

using namespace cux;

namespace {

constexpr std::size_t kBytes = 1u << 20;

sim::FutureTask exchange(c4p::Charm4py* py, c4p::ChannelEnd* channel, int pe, bool gpu_direct,
                         bool initiator, void* d_data, void* h_data, cuda::Stream* stream,
                         double* out_us) {
  hw::System& sys = py->system();
  const double t0 = sim::toUs(sys.engine.now());

  if (gpu_direct) {
    // GPU-aware: send and receive using GPU buffers directly (Fig. 8, else
    // branch).
    if (initiator) {
      co_await channel->send(d_data, kBytes);
      co_await channel->recv(d_data, kBytes);
    } else {
      co_await channel->recv(d_data, kBytes);
      co_await channel->send(d_data, kBytes);
    }
  } else {
    // Host-staging: explicit transfers between host and device around the
    // channel operations (Fig. 8, if branch).
    if (initiator) {
      py->cudaDtoH(pe, h_data, d_data, kBytes, *stream);
      co_await py->streamSynchronize(pe, *stream);
      co_await channel->send(h_data, kBytes);
      co_await channel->recv(h_data, kBytes);
      py->cudaHtoD(pe, d_data, h_data, kBytes, *stream);
      co_await py->streamSynchronize(pe, *stream);
    } else {
      co_await channel->recv(h_data, kBytes);
      py->cudaHtoD(pe, d_data, h_data, kBytes, *stream);
      co_await py->streamSynchronize(pe, *stream);
      py->cudaDtoH(pe, h_data, d_data, kBytes, *stream);
      co_await py->streamSynchronize(pe, *stream);
      co_await channel->send(h_data, kBytes);
    }
  }
  if (out_us != nullptr) *out_us = sim::toUs(sys.engine.now()) - t0;
}

double runOnce(bool gpu_direct, bool check_integrity) {
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  ucx::Context ucx(sys, m.ucx);
  ck::Runtime rt(sys, ucx, m);
  c4p::Charm4py py(rt);

  cuda::DeviceBuffer d0(sys, 0, kBytes), d1(sys, 3, kBytes);
  std::vector<std::byte> h0(kBytes), h1(kBytes);
  cuda::Stream s0(sys, 0), s1(sys, 3);
  std::memset(d0.get(), 0x5A, kBytes);
  std::memset(d1.get(), 0, kBytes);

  auto ch = py.makeChannel(0, 3);
  double rtt = 0;
  py.startOn(0, [&] {
    (void)exchange(&py, ch.a, 0, gpu_direct, true, d0.get(), h0.data(), &s0, &rtt);
  });
  py.startOn(3, [&] {
    (void)exchange(&py, ch.b, 3, gpu_direct, false, d1.get(), h1.data(), &s1, nullptr);
  });
  sys.engine.run();

  if (check_integrity && std::memcmp(d0.get(), d1.get(), kBytes) != 0) {
    std::printf("data integrity FAILED\n");
  }
  return rtt;
}

}  // namespace

int main() {
  const double direct = runOnce(/*gpu_direct=*/true, true);
  const double staged = runOnce(/*gpu_direct=*/false, true);
  std::printf("channel round trip of %zu bytes between two GPUs (one node):\n", kBytes);
  std::printf("  gpu_direct   : %8.2f us\n", direct);
  std::printf("  host-staging : %8.2f us  (%.1fx slower)\n", staged, staged / direct);
  std::printf("\nThe GPU-aware path hands device pointers to the channel; the host-staging\n"
              "path pays two CUDA copies and Python buffer serialisation per direction.\n");
  return 0;
}
