/// Quickstart: GPU-aware entry-method invocation in the Charm++-like runtime.
///
/// Mirrors the paper's Fig. 4: a sender chare invokes `recv` on a peer with a
/// `nocopydevice` GPU buffer parameter (here: a ck::Buffer argument); the
/// receiver's *post entry method* supplies the destination GPU buffer, the
/// machine layer moves the payload directly between the simulated GPUs via
/// mini-UCX, and the regular entry method runs once the data has landed.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "charm/charm.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "ucx/context.hpp"

using namespace cux;

namespace {

constexpr std::size_t kBytes = 1u << 20;  // 1 MiB of GPU data

struct MyChare : ck::Chare {
  // Post entry method: runs before `recv`, lets us set the destination GPU
  // buffer so the incoming data lands with zero copies (paper Fig. 4 (2)).
  void recvPost(std::span<ck::Buffer> bufs) {
    std::printf("[pe %d] post entry at t=%.2f us: supplying destination GPU buffer\n", myPe(),
                sim::toUs(ckRuntime().system().engine.now()));
    bufs[0].setDestination(recv_gpu_data, kBytes);
  }

  // Regular entry method: the GPU data is available (paper Fig. 4 (3)).
  void recv(ck::Buffer data, std::uint64_t size) {
    std::printf("[pe %d] regular entry at t=%.2f us: received %llu bytes on GPU (ptr=%p)\n",
                myPe(), sim::toUs(ckRuntime().system().engine.now()),
                static_cast<unsigned long long>(size), data.data());
    const auto* bytes = static_cast<const unsigned char*>(data.data());
    std::printf("[pe %d] first bytes: %02x %02x %02x %02x\n", myPe(), bytes[0], bytes[1],
                bytes[2], bytes[3]);
  }

  void* recv_gpu_data = nullptr;
};

}  // namespace

int main() {
  // One simulated Summit node: 2 Power9 CPUs, 6 V100s, NVLink + X-Bus.
  model::Model m = model::summit(/*nodes=*/1);
  hw::System sys(m.machine);
  ucx::Context ucx(sys, m.ucx);
  ck::Runtime rt(sys, ucx, m);

  ck::setPostEntry<&MyChare::recv, &MyChare::recvPost>();

  // Two chares on different GPUs of the node (PE = GPU).
  [[maybe_unused]] auto sender = rt.create<MyChare>(0);
  auto receiver = rt.create<MyChare>(4);  // other CPU socket: crosses the X-Bus

  // Simulated device allocations: real memory backs them, so data integrity
  // is observable end to end.
  cuda::DeviceBuffer src(sys, 0, kBytes);
  cuda::DeviceBuffer dst(sys, 4, kBytes);
  std::memset(src.get(), 0xAB, kBytes);
  std::memset(dst.get(), 0x00, kBytes);
  receiver.local()->recv_gpu_data = dst.get();

  // Invoke the entry method with a GPU buffer parameter. The runtime sends
  // the metadata message through Converse and the payload through the
  // GPU-aware UCX machine layer (paper Fig. 6).
  rt.startOn(0, [&] {
    std::printf("[pe 0] sending %zu bytes of GPU data at t=%.2f us\n", kBytes,
                sim::toUs(sys.engine.now()));
    receiver.send<&MyChare::recv>(ck::Buffer(src.get(), kBytes), std::uint64_t{kBytes});
  });

  sys.engine.run();

  const bool ok = std::memcmp(src.get(), dst.get(), kBytes) == 0;
  std::printf("\ndata integrity: %s; total virtual time %.2f us\n", ok ? "OK" : "FAILED",
              sim::toUs(sys.engine.now()));
  return ok ? 0 : 1;
}
