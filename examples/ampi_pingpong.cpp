/// CUDA-aware MPI ping-pong on AMPI and the OpenMPI baseline.
///
/// GPU buffers are passed directly to MPI send/recv, "like any CUDA-aware
/// MPI implementation" (paper Sec. III-C). The example prints a small
/// latency table comparing AMPI against OpenMPI for intra- and inter-node
/// pairs — the layering overhead the paper quantifies as ~8 us.
///
/// Build & run:  ./build/examples/ampi_pingpong

#include <cstdio>
#include <memory>

#include "ampi/ampi.hpp"
#include "hw/cuda.hpp"
#include "model/model.hpp"
#include "ompi/ompi.hpp"
#include "ucx/context.hpp"

using namespace cux;

namespace {

struct PingEnv {
  std::size_t bytes = 0;
  int peer = 0;
  void* buf0 = nullptr;
  void* buf1 = nullptr;
  int iters = 20;
  double one_way_us = 0;
};

template <class RankT>
sim::FutureTask pingpong(RankT* r, PingEnv* env) {
  if (r->rank() == 0) {
    const double t0 = r->timeUs();
    for (int i = 0; i < env->iters; ++i) {
      co_await r->send(env->buf0, env->bytes, env->peer, 0);
      co_await r->recv(env->buf0, env->bytes, env->peer, 1);
    }
    env->one_way_us = (r->timeUs() - t0) / (2.0 * env->iters);
  } else if (r->rank() == env->peer) {
    for (int i = 0; i < env->iters; ++i) {
      co_await r->recv(env->buf1, env->bytes, 0, 0);
      co_await r->send(env->buf1, env->bytes, 0, 1);
    }
  }
}

double measure(bool use_ampi, int peer, std::size_t bytes) {
  model::Model m = model::summit(2);
  m.machine.backed_device_memory = false;
  hw::System sys(m.machine);
  ucx::Context ucx(sys, m.ucx);
  cuda::DeviceBuffer b0(sys, 0, bytes), b1(sys, peer, bytes);

  PingEnv env;
  env.bytes = bytes;
  env.peer = peer;
  env.buf0 = b0.get();
  env.buf1 = b1.get();

  if (use_ampi) {
    ck::Runtime rt(sys, ucx, m);
    ampi::World world(rt);
    world.run([&env](ampi::Rank& r) -> sim::FutureTask { return pingpong(&r, &env); });
    sys.engine.run();
  } else {
    ompi::World world(sys, ucx, m.costs);
    world.run([&env](ompi::Rank& r) -> sim::FutureTask { return pingpong(&r, &env); });
    sys.engine.run();
  }
  return env.one_way_us;
}

}  // namespace

int main() {
  std::printf("GPU-to-GPU one-way latency (us), device buffers passed straight to MPI\n\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "size", "AMPI intra", "OMPI intra", "AMPI inter",
              "OMPI inter");
  for (std::size_t bytes : {8u, 1024u, 65536u, 1u << 20, 4u << 20}) {
    std::printf("%-10zu %12.2f %12.2f %12.2f %12.2f\n", bytes, measure(true, 1, bytes),
                measure(false, 1, bytes), measure(true, 6, bytes), measure(false, 6, bytes));
  }
  std::printf("\nAMPI trails OpenMPI by its runtime layering overhead (~8 us in the paper);\n"
              "both converge at large sizes where the wire dominates.\n");
  return 0;
}
