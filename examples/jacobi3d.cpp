/// Jacobi3D proxy application across all four programming models.
///
/// Runs a small, fully verified 3D Jacobi solve (results checked against a
/// serial CPU reference), then a paper-scale timing run (1536^3 doubles on
/// one simulated Summit node) comparing host-staging and GPU-aware halo
/// exchange for Charm++, AMPI, OpenMPI and Charm4py — the single-node column
/// of the paper's Figs. 14-16.
///
/// Build & run:  ./build/examples/jacobi3d

#include <cmath>
#include <cstdio>

#include "apps/jacobi/jacobi.hpp"

using namespace cux;
using namespace cux::jacobi;

int main() {
  // --- correctness: distributed result == serial reference -----------------
  const Vec3 small{24, 18, 12};
  const auto ref = referenceJacobi(small, 4);
  std::printf("verifying a %lldx%lldx%lld solve (4 iterations, 6 blocks) on every stack:\n",
              static_cast<long long>(small.x), static_cast<long long>(small.y),
              static_cast<long long>(small.z));
  bool all_ok = true;
  for (Stack s : {Stack::Charm, Stack::Ampi, Stack::Ompi, Stack::Charm4py}) {
    for (Mode m : {Mode::Device, Mode::HostStaging}) {
      JacobiConfig cfg;
      cfg.stack = s;
      cfg.mode = m;
      cfg.nodes = 1;
      cfg.grid = small;
      cfg.iters = 4;
      cfg.warmup = 0;
      cfg.backed = true;
      const auto got = runJacobiVerified(cfg);
      double err = 0;
      for (std::size_t i = 0; i < ref.size(); ++i) err = std::max(err, std::fabs(got[i] - ref[i]));
      std::printf("  %-9s %-2s max |err| = %g\n", osu::name(static_cast<osu::Stack>(s)),
                  m == Mode::Device ? "-D" : "-H", err);
      all_ok = all_ok && err == 0.0;
    }
  }

  // --- paper-scale timing (one Summit node, 1536^3 doubles) ----------------
  std::printf("\n1536^3 doubles on one simulated Summit node (6 V100s), ms per iteration:\n");
  std::printf("  %-9s %10s %10s %10s %10s %8s\n", "model", "overall-H", "overall-D", "comm-H",
              "comm-D", "comm x");
  for (Stack s : {Stack::Charm, Stack::Ampi, Stack::Ompi, Stack::Charm4py}) {
    JacobiConfig cfg;
    cfg.stack = s;
    cfg.nodes = 1;
    cfg.grid = kWeakBase;
    cfg.iters = 5;
    cfg.warmup = 1;
    cfg.backed = false;  // timing-only: no terabytes needed
    cfg.mode = Mode::HostStaging;
    const auto h = runJacobi(cfg);
    cfg.mode = Mode::Device;
    const auto d = runJacobi(cfg);
    std::printf("  %-9s %10.2f %10.2f %10.2f %10.2f %7.1fx\n",
                osu::name(static_cast<osu::Stack>(s)), h.overall_ms_per_iter,
                d.overall_ms_per_iter, h.comm_ms_per_iter, d.comm_ms_per_iter,
                h.comm_ms_per_iter / d.comm_ms_per_iter);
  }
  std::printf("\nGPU-aware halo exchange removes the host round trip; the communication\n"
              "speedup is largest within a node, as in the paper's Figs. 14-16.\n");
  return all_ok ? 0 : 1;
}
