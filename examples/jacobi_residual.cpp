/// Jacobi with convergence checking — the piece the paper's proxy app leaves
/// out ("configured to run for a set number of iterations without
/// convergence checks") and the reason the paper's future work wants GPU
/// collectives: a real solver needs a global residual reduction each sweep.
///
/// This example runs a small, fully verified AMPI Jacobi where every rank
/// computes its local residual on the (simulated) GPU and the ranks combine
/// it with the GPU-aware allreduce from src/coll — iterating until the
/// residual falls under a tolerance.
///
/// Build & run:  ./build/examples/jacobi_residual

#include <cmath>
#include <cstdio>
#include <memory>

#include "ampi/ampi.hpp"
#include "apps/jacobi/block.hpp"
#include "coll/coll.hpp"
#include "ucx/context.hpp"

using namespace cux;
using namespace cux::jacobi;

namespace {

constexpr Vec3 kGrid{12, 12, 12};
constexpr double kTol = 1e-3;
constexpr int kMaxIters = 400;

struct Env {
  Decomposition dec;
  std::vector<std::unique_ptr<BlockState>> blocks;
  int iterations_used = 0;
  double final_residual = 0;
};

/// One rank: halo exchange + stencil + residual allreduce per iteration.
sim::FutureTask solver(ampi::Rank* r, Env* env) {
  BlockState& b = *env->blocks[static_cast<std::size_t>(r->rank())];
  double residual = 1e30;
  int it = 0;
  for (; it < kMaxIters && residual > kTol; ++it) {
    // Pack + exchange halos (GPU-aware: device pointers straight into MPI).
    b.stream->launch(b.packCost(), b.packBody());
    co_await b.stream->synchronize();
    std::vector<ampi::Request> reqs;
    for (int d = 0; d < kNumDirs; ++d) {
      const int peer = b.nbr[static_cast<std::size_t>(d)];
      if (peer < 0) continue;
      const auto dir = static_cast<Dir>(d);
      reqs.push_back(r->irecv(b.recvBuf(dir), env->dec.faceBytes(dir), peer, d));
      reqs.push_back(r->isend(b.sendBuf(dir), env->dec.faceBytes(dir), peer,
                              static_cast<int>(opposite(dir))));
    }
    co_await r->waitAll(reqs);

    // Unpack + stencil; the residual kernel accumulates sum((new-old)^2).
    b.stream->launch(b.unpackCost(), b.unpackBody(0));
    double local_sq = 0;
    const int before = b.cur;
    b.stream->launch(b.stencilCost(), b.stencilBody());
    b.stream->launch(b.stencilCost() / 4, [&b, &local_sq, before] {
      const auto* oldg = static_cast<const double*>(b.grid[before]);
      const auto* newg = static_cast<const double*>(b.grid[b.cur]);
      const std::int64_t sx = b.dec.block.x + 2, sy = b.dec.block.y + 2;
      for (std::int64_t k = 1; k <= b.dec.block.z; ++k) {
        for (std::int64_t j = 1; j <= b.dec.block.y; ++j) {
          for (std::int64_t i = 1; i <= b.dec.block.x; ++i) {
            const auto c = static_cast<std::size_t>(i + sx * (j + sy * k));
            const double d = newg[c] - oldg[c];
            local_sq += d * d;
          }
        }
      }
    });
    co_await b.stream->synchronize();

    // Global residual: GPU-aware allreduce translated to point-to-point.
    double global_sq = 0;
    co_await coll::allreduce(*r, &local_sq, &global_sq, 1, coll::Op::Sum);
    residual = std::sqrt(global_sq);
  }
  if (r->rank() == 0) {
    env->iterations_used = it;
    env->final_residual = residual;
  }
}

}  // namespace

int main() {
  model::Model m = model::summit(1);
  hw::System sys(m.machine);
  ucx::Context ctx(sys, m.ucx);
  ck::Runtime rt(sys, ctx, m);
  ampi::World world(rt);

  Env env;
  env.dec = decompose(kGrid, world.size());
  JacobiConfig cfg;
  cfg.grid = kGrid;
  cfg.backed = true;  // real data: the residual is a real number
  cfg.model = m;
  for (int p = 0; p < world.size(); ++p) {
    auto b = std::make_unique<BlockState>();
    b->init(sys, cfg, env.dec, p, p);
    env.blocks.push_back(std::move(b));
  }

  world.run([&env](ampi::Rank& r) -> sim::FutureTask { return solver(&r, &env); });
  sys.engine.run();

  std::printf("Jacobi on a %lld^3 grid over %d simulated GPUs:\n",
              static_cast<long long>(kGrid.x), world.size());
  std::printf("  converged to residual %.2e after %d iterations\n", env.final_residual,
              env.iterations_used);
  std::printf("  virtual time: %.2f ms\n", sim::toMs(sys.engine.now()));
  const bool ok = env.final_residual <= kTol && env.iterations_used > 1;
  std::printf("  %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
