file(REMOVE_RECURSE
  "CMakeFiles/test_ompi.dir/test_ompi.cpp.o"
  "CMakeFiles/test_ompi.dir/test_ompi.cpp.o.d"
  "test_ompi"
  "test_ompi.pdb"
  "test_ompi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ompi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
