# Empty dependencies file for test_ompi.
# This may be replaced when dependencies are built.
