file(REMOVE_RECURSE
  "CMakeFiles/test_charm4py.dir/test_charm4py.cpp.o"
  "CMakeFiles/test_charm4py.dir/test_charm4py.cpp.o.d"
  "test_charm4py"
  "test_charm4py.pdb"
  "test_charm4py[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charm4py.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
