# Empty compiler generated dependencies file for test_charm4py.
# This may be replaced when dependencies are built.
