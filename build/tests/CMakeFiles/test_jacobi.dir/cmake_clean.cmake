file(REMOVE_RECURSE
  "CMakeFiles/test_jacobi.dir/test_jacobi.cpp.o"
  "CMakeFiles/test_jacobi.dir/test_jacobi.cpp.o.d"
  "test_jacobi"
  "test_jacobi.pdb"
  "test_jacobi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
