file(REMOVE_RECURSE
  "CMakeFiles/test_ucx_rma_stream.dir/test_ucx_rma_stream.cpp.o"
  "CMakeFiles/test_ucx_rma_stream.dir/test_ucx_rma_stream.cpp.o.d"
  "test_ucx_rma_stream"
  "test_ucx_rma_stream.pdb"
  "test_ucx_rma_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ucx_rma_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
