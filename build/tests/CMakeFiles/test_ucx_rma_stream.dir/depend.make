# Empty dependencies file for test_ucx_rma_stream.
# This may be replaced when dependencies are built.
