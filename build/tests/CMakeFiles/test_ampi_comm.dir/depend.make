# Empty dependencies file for test_ampi_comm.
# This may be replaced when dependencies are built.
