file(REMOVE_RECURSE
  "CMakeFiles/test_ampi_comm.dir/test_ampi_comm.cpp.o"
  "CMakeFiles/test_ampi_comm.dir/test_ampi_comm.cpp.o.d"
  "test_ampi_comm"
  "test_ampi_comm.pdb"
  "test_ampi_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ampi_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
