# Empty compiler generated dependencies file for test_am_usertag.
# This may be replaced when dependencies are built.
