file(REMOVE_RECURSE
  "CMakeFiles/test_am_usertag.dir/test_am_usertag.cpp.o"
  "CMakeFiles/test_am_usertag.dir/test_am_usertag.cpp.o.d"
  "test_am_usertag"
  "test_am_usertag.pdb"
  "test_am_usertag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_am_usertag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
