# Empty compiler generated dependencies file for test_determinism_edges.
# This may be replaced when dependencies are built.
