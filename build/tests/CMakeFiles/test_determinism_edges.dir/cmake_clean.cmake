file(REMOVE_RECURSE
  "CMakeFiles/test_determinism_edges.dir/test_determinism_edges.cpp.o"
  "CMakeFiles/test_determinism_edges.dir/test_determinism_edges.cpp.o.d"
  "test_determinism_edges"
  "test_determinism_edges.pdb"
  "test_determinism_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_determinism_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
