# Empty dependencies file for test_ucx.
# This may be replaced when dependencies are built.
