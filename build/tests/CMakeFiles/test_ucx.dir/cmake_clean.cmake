file(REMOVE_RECURSE
  "CMakeFiles/test_ucx.dir/test_ucx.cpp.o"
  "CMakeFiles/test_ucx.dir/test_ucx.cpp.o.d"
  "test_ucx"
  "test_ucx.pdb"
  "test_ucx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ucx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
