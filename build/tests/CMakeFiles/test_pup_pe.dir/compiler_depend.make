# Empty compiler generated dependencies file for test_pup_pe.
# This may be replaced when dependencies are built.
