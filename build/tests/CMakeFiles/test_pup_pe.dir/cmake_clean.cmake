file(REMOVE_RECURSE
  "CMakeFiles/test_pup_pe.dir/test_pup_pe.cpp.o"
  "CMakeFiles/test_pup_pe.dir/test_pup_pe.cpp.o.d"
  "test_pup_pe"
  "test_pup_pe.pdb"
  "test_pup_pe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pup_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
