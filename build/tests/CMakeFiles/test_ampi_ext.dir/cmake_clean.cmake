file(REMOVE_RECURSE
  "CMakeFiles/test_ampi_ext.dir/test_ampi_ext.cpp.o"
  "CMakeFiles/test_ampi_ext.dir/test_ampi_ext.cpp.o.d"
  "test_ampi_ext"
  "test_ampi_ext.pdb"
  "test_ampi_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ampi_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
