# Empty compiler generated dependencies file for test_ampi_ext.
# This may be replaced when dependencies are built.
