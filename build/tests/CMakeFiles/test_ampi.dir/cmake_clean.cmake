file(REMOVE_RECURSE
  "CMakeFiles/test_ampi.dir/test_ampi.cpp.o"
  "CMakeFiles/test_ampi.dir/test_ampi.cpp.o.d"
  "test_ampi"
  "test_ampi.pdb"
  "test_ampi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ampi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
