# Empty dependencies file for test_charm_group.
# This may be replaced when dependencies are built.
