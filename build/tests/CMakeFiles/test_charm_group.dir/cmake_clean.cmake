file(REMOVE_RECURSE
  "CMakeFiles/test_charm_group.dir/test_charm_group.cpp.o"
  "CMakeFiles/test_charm_group.dir/test_charm_group.cpp.o.d"
  "test_charm_group"
  "test_charm_group.pdb"
  "test_charm_group[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charm_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
