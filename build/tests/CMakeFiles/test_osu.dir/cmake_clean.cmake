file(REMOVE_RECURSE
  "CMakeFiles/test_osu.dir/test_osu.cpp.o"
  "CMakeFiles/test_osu.dir/test_osu.cpp.o.d"
  "test_osu"
  "test_osu.pdb"
  "test_osu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
