# Empty dependencies file for test_osu.
# This may be replaced when dependencies are built.
