# Empty compiler generated dependencies file for test_ucx_config_matrix.
# This may be replaced when dependencies are built.
