# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_ucx[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_charm[1]_include.cmake")
include("/root/repo/build/tests/test_ampi[1]_include.cmake")
include("/root/repo/build/tests/test_ompi[1]_include.cmake")
include("/root/repo/build/tests/test_charm4py[1]_include.cmake")
include("/root/repo/build/tests/test_jacobi[1]_include.cmake")
include("/root/repo/build/tests/test_osu[1]_include.cmake")
include("/root/repo/build/tests/test_coll[1]_include.cmake")
include("/root/repo/build/tests/test_ampi_comm[1]_include.cmake")
include("/root/repo/build/tests/test_ucx_rma_stream[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_charm_group[1]_include.cmake")
include("/root/repo/build/tests/test_pup_pe[1]_include.cmake")
include("/root/repo/build/tests/test_am_usertag[1]_include.cmake")
include("/root/repo/build/tests/test_ampi_ext[1]_include.cmake")
include("/root/repo/build/tests/test_ucx_config_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_particles[1]_include.cmake")
include("/root/repo/build/tests/test_charm_array[1]_include.cmake")
include("/root/repo/build/tests/test_determinism_edges[1]_include.cmake")
include("/root/repo/build/tests/test_misc_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
