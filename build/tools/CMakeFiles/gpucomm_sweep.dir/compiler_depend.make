# Empty compiler generated dependencies file for gpucomm_sweep.
# This may be replaced when dependencies are built.
