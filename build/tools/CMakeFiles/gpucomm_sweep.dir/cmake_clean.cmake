file(REMOVE_RECURSE
  "CMakeFiles/gpucomm_sweep.dir/sweep.cpp.o"
  "CMakeFiles/gpucomm_sweep.dir/sweep.cpp.o.d"
  "gpucomm_sweep"
  "gpucomm_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpucomm_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
