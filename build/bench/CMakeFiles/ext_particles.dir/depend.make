# Empty dependencies file for ext_particles.
# This may be replaced when dependencies are built.
