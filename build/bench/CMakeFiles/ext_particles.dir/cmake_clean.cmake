file(REMOVE_RECURSE
  "CMakeFiles/ext_particles.dir/ext_particles.cpp.o"
  "CMakeFiles/ext_particles.dir/ext_particles.cpp.o.d"
  "ext_particles"
  "ext_particles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_particles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
