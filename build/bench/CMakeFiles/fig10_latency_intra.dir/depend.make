# Empty dependencies file for fig10_latency_intra.
# This may be replaced when dependencies are built.
