file(REMOVE_RECURSE
  "CMakeFiles/fig10_latency_intra.dir/fig10_latency_intra.cpp.o"
  "CMakeFiles/fig10_latency_intra.dir/fig10_latency_intra.cpp.o.d"
  "fig10_latency_intra"
  "fig10_latency_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_latency_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
