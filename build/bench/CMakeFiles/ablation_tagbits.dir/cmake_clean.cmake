file(REMOVE_RECURSE
  "CMakeFiles/ablation_tagbits.dir/ablation_tagbits.cpp.o"
  "CMakeFiles/ablation_tagbits.dir/ablation_tagbits.cpp.o.d"
  "ablation_tagbits"
  "ablation_tagbits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tagbits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
