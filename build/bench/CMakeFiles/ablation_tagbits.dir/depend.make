# Empty dependencies file for ablation_tagbits.
# This may be replaced when dependencies are built.
