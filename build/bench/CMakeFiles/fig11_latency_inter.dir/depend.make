# Empty dependencies file for fig11_latency_inter.
# This may be replaced when dependencies are built.
