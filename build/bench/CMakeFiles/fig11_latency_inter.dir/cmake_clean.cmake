file(REMOVE_RECURSE
  "CMakeFiles/fig11_latency_inter.dir/fig11_latency_inter.cpp.o"
  "CMakeFiles/fig11_latency_inter.dir/fig11_latency_inter.cpp.o.d"
  "fig11_latency_inter"
  "fig11_latency_inter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_latency_inter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
