file(REMOVE_RECURSE
  "CMakeFiles/ext_osu_suite.dir/ext_osu_suite.cpp.o"
  "CMakeFiles/ext_osu_suite.dir/ext_osu_suite.cpp.o.d"
  "ext_osu_suite"
  "ext_osu_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_osu_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
