# Empty compiler generated dependencies file for ext_osu_suite.
# This may be replaced when dependencies are built.
