# Empty compiler generated dependencies file for fig14_jacobi_charm.
# This may be replaced when dependencies are built.
