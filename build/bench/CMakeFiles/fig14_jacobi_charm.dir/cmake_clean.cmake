file(REMOVE_RECURSE
  "CMakeFiles/fig14_jacobi_charm.dir/fig14_jacobi_charm.cpp.o"
  "CMakeFiles/fig14_jacobi_charm.dir/fig14_jacobi_charm.cpp.o.d"
  "fig14_jacobi_charm"
  "fig14_jacobi_charm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_jacobi_charm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
