# Empty compiler generated dependencies file for fig16_jacobi_charm4py.
# This may be replaced when dependencies are built.
