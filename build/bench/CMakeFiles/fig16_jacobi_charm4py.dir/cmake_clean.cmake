file(REMOVE_RECURSE
  "CMakeFiles/fig16_jacobi_charm4py.dir/fig16_jacobi_charm4py.cpp.o"
  "CMakeFiles/fig16_jacobi_charm4py.dir/fig16_jacobi_charm4py.cpp.o.d"
  "fig16_jacobi_charm4py"
  "fig16_jacobi_charm4py.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_jacobi_charm4py.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
