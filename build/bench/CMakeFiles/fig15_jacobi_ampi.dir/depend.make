# Empty dependencies file for fig15_jacobi_ampi.
# This may be replaced when dependencies are built.
