file(REMOVE_RECURSE
  "CMakeFiles/fig15_jacobi_ampi.dir/fig15_jacobi_ampi.cpp.o"
  "CMakeFiles/fig15_jacobi_ampi.dir/fig15_jacobi_ampi.cpp.o.d"
  "fig15_jacobi_ampi"
  "fig15_jacobi_ampi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_jacobi_ampi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
