file(REMOVE_RECURSE
  "CMakeFiles/table1_improvements.dir/table1_improvements.cpp.o"
  "CMakeFiles/table1_improvements.dir/table1_improvements.cpp.o.d"
  "table1_improvements"
  "table1_improvements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_improvements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
