# Empty compiler generated dependencies file for table1_improvements.
# This may be replaced when dependencies are built.
