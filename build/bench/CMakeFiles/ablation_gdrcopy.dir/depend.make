# Empty dependencies file for ablation_gdrcopy.
# This may be replaced when dependencies are built.
