file(REMOVE_RECURSE
  "CMakeFiles/ablation_gdrcopy.dir/ablation_gdrcopy.cpp.o"
  "CMakeFiles/ablation_gdrcopy.dir/ablation_gdrcopy.cpp.o.d"
  "ablation_gdrcopy"
  "ablation_gdrcopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gdrcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
