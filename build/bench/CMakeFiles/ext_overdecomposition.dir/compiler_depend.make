# Empty compiler generated dependencies file for ext_overdecomposition.
# This may be replaced when dependencies are built.
