file(REMOVE_RECURSE
  "CMakeFiles/ext_overdecomposition.dir/ext_overdecomposition.cpp.o"
  "CMakeFiles/ext_overdecomposition.dir/ext_overdecomposition.cpp.o.d"
  "ext_overdecomposition"
  "ext_overdecomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_overdecomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
