
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_metadata.cpp" "bench/CMakeFiles/ablation_metadata.dir/ablation_metadata.cpp.o" "gcc" "bench/CMakeFiles/ablation_metadata.dir/ablation_metadata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/cux_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ampi/CMakeFiles/cux_ampi.dir/DependInfo.cmake"
  "/root/repo/build/src/ompi/CMakeFiles/cux_ompi.dir/DependInfo.cmake"
  "/root/repo/build/src/charm4py/CMakeFiles/cux_charm4py.dir/DependInfo.cmake"
  "/root/repo/build/src/charm/CMakeFiles/cux_charm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/converse/CMakeFiles/cux_converse.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cux_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ucx/CMakeFiles/cux_ucx.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cux_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cux_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
