# Empty compiler generated dependencies file for fig12_bandwidth_intra.
# This may be replaced when dependencies are built.
