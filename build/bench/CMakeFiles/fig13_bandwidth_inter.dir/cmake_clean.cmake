file(REMOVE_RECURSE
  "CMakeFiles/fig13_bandwidth_inter.dir/fig13_bandwidth_inter.cpp.o"
  "CMakeFiles/fig13_bandwidth_inter.dir/fig13_bandwidth_inter.cpp.o.d"
  "fig13_bandwidth_inter"
  "fig13_bandwidth_inter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bandwidth_inter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
