# Empty dependencies file for fig13_bandwidth_inter.
# This may be replaced when dependencies are built.
