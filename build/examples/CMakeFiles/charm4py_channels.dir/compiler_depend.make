# Empty compiler generated dependencies file for charm4py_channels.
# This may be replaced when dependencies are built.
