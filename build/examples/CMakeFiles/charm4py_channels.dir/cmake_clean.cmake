file(REMOVE_RECURSE
  "CMakeFiles/charm4py_channels.dir/charm4py_channels.cpp.o"
  "CMakeFiles/charm4py_channels.dir/charm4py_channels.cpp.o.d"
  "charm4py_channels"
  "charm4py_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charm4py_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
