# Empty compiler generated dependencies file for ampi_pingpong.
# This may be replaced when dependencies are built.
