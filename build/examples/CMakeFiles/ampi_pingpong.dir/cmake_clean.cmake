file(REMOVE_RECURSE
  "CMakeFiles/ampi_pingpong.dir/ampi_pingpong.cpp.o"
  "CMakeFiles/ampi_pingpong.dir/ampi_pingpong.cpp.o.d"
  "ampi_pingpong"
  "ampi_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampi_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
