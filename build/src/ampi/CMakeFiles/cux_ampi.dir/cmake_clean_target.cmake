file(REMOVE_RECURSE
  "libcux_ampi.a"
)
