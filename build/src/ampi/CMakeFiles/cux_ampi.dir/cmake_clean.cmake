file(REMOVE_RECURSE
  "CMakeFiles/cux_ampi.dir/ampi.cpp.o"
  "CMakeFiles/cux_ampi.dir/ampi.cpp.o.d"
  "libcux_ampi.a"
  "libcux_ampi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_ampi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
