# Empty dependencies file for cux_ampi.
# This may be replaced when dependencies are built.
