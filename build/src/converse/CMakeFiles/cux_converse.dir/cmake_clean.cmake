file(REMOVE_RECURSE
  "CMakeFiles/cux_converse.dir/converse.cpp.o"
  "CMakeFiles/cux_converse.dir/converse.cpp.o.d"
  "libcux_converse.a"
  "libcux_converse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_converse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
