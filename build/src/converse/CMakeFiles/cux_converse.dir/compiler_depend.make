# Empty compiler generated dependencies file for cux_converse.
# This may be replaced when dependencies are built.
