file(REMOVE_RECURSE
  "libcux_converse.a"
)
