# Empty compiler generated dependencies file for cux_ucx.
# This may be replaced when dependencies are built.
