file(REMOVE_RECURSE
  "CMakeFiles/cux_ucx.dir/am.cpp.o"
  "CMakeFiles/cux_ucx.dir/am.cpp.o.d"
  "CMakeFiles/cux_ucx.dir/rma.cpp.o"
  "CMakeFiles/cux_ucx.dir/rma.cpp.o.d"
  "CMakeFiles/cux_ucx.dir/stream.cpp.o"
  "CMakeFiles/cux_ucx.dir/stream.cpp.o.d"
  "CMakeFiles/cux_ucx.dir/ucx.cpp.o"
  "CMakeFiles/cux_ucx.dir/ucx.cpp.o.d"
  "libcux_ucx.a"
  "libcux_ucx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_ucx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
