
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ucx/am.cpp" "src/ucx/CMakeFiles/cux_ucx.dir/am.cpp.o" "gcc" "src/ucx/CMakeFiles/cux_ucx.dir/am.cpp.o.d"
  "/root/repo/src/ucx/rma.cpp" "src/ucx/CMakeFiles/cux_ucx.dir/rma.cpp.o" "gcc" "src/ucx/CMakeFiles/cux_ucx.dir/rma.cpp.o.d"
  "/root/repo/src/ucx/stream.cpp" "src/ucx/CMakeFiles/cux_ucx.dir/stream.cpp.o" "gcc" "src/ucx/CMakeFiles/cux_ucx.dir/stream.cpp.o.d"
  "/root/repo/src/ucx/ucx.cpp" "src/ucx/CMakeFiles/cux_ucx.dir/ucx.cpp.o" "gcc" "src/ucx/CMakeFiles/cux_ucx.dir/ucx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/cux_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cux_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
