file(REMOVE_RECURSE
  "libcux_ucx.a"
)
