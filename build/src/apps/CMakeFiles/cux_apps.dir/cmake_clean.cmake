file(REMOVE_RECURSE
  "CMakeFiles/cux_apps.dir/jacobi/block.cpp.o"
  "CMakeFiles/cux_apps.dir/jacobi/block.cpp.o.d"
  "CMakeFiles/cux_apps.dir/jacobi/geometry.cpp.o"
  "CMakeFiles/cux_apps.dir/jacobi/geometry.cpp.o.d"
  "CMakeFiles/cux_apps.dir/jacobi/jacobi_c4p.cpp.o"
  "CMakeFiles/cux_apps.dir/jacobi/jacobi_c4p.cpp.o.d"
  "CMakeFiles/cux_apps.dir/jacobi/jacobi_charm.cpp.o"
  "CMakeFiles/cux_apps.dir/jacobi/jacobi_charm.cpp.o.d"
  "CMakeFiles/cux_apps.dir/jacobi/jacobi_common.cpp.o"
  "CMakeFiles/cux_apps.dir/jacobi/jacobi_common.cpp.o.d"
  "CMakeFiles/cux_apps.dir/jacobi/jacobi_mpi.cpp.o"
  "CMakeFiles/cux_apps.dir/jacobi/jacobi_mpi.cpp.o.d"
  "CMakeFiles/cux_apps.dir/osu/osu_c4p.cpp.o"
  "CMakeFiles/cux_apps.dir/osu/osu_c4p.cpp.o.d"
  "CMakeFiles/cux_apps.dir/osu/osu_charm.cpp.o"
  "CMakeFiles/cux_apps.dir/osu/osu_charm.cpp.o.d"
  "CMakeFiles/cux_apps.dir/osu/osu_common.cpp.o"
  "CMakeFiles/cux_apps.dir/osu/osu_common.cpp.o.d"
  "CMakeFiles/cux_apps.dir/osu/osu_mpi.cpp.o"
  "CMakeFiles/cux_apps.dir/osu/osu_mpi.cpp.o.d"
  "CMakeFiles/cux_apps.dir/particles/particles.cpp.o"
  "CMakeFiles/cux_apps.dir/particles/particles.cpp.o.d"
  "libcux_apps.a"
  "libcux_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
