
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/jacobi/block.cpp" "src/apps/CMakeFiles/cux_apps.dir/jacobi/block.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/jacobi/block.cpp.o.d"
  "/root/repo/src/apps/jacobi/geometry.cpp" "src/apps/CMakeFiles/cux_apps.dir/jacobi/geometry.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/jacobi/geometry.cpp.o.d"
  "/root/repo/src/apps/jacobi/jacobi_c4p.cpp" "src/apps/CMakeFiles/cux_apps.dir/jacobi/jacobi_c4p.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/jacobi/jacobi_c4p.cpp.o.d"
  "/root/repo/src/apps/jacobi/jacobi_charm.cpp" "src/apps/CMakeFiles/cux_apps.dir/jacobi/jacobi_charm.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/jacobi/jacobi_charm.cpp.o.d"
  "/root/repo/src/apps/jacobi/jacobi_common.cpp" "src/apps/CMakeFiles/cux_apps.dir/jacobi/jacobi_common.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/jacobi/jacobi_common.cpp.o.d"
  "/root/repo/src/apps/jacobi/jacobi_mpi.cpp" "src/apps/CMakeFiles/cux_apps.dir/jacobi/jacobi_mpi.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/jacobi/jacobi_mpi.cpp.o.d"
  "/root/repo/src/apps/osu/osu_c4p.cpp" "src/apps/CMakeFiles/cux_apps.dir/osu/osu_c4p.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/osu/osu_c4p.cpp.o.d"
  "/root/repo/src/apps/osu/osu_charm.cpp" "src/apps/CMakeFiles/cux_apps.dir/osu/osu_charm.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/osu/osu_charm.cpp.o.d"
  "/root/repo/src/apps/osu/osu_common.cpp" "src/apps/CMakeFiles/cux_apps.dir/osu/osu_common.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/osu/osu_common.cpp.o.d"
  "/root/repo/src/apps/osu/osu_mpi.cpp" "src/apps/CMakeFiles/cux_apps.dir/osu/osu_mpi.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/osu/osu_mpi.cpp.o.d"
  "/root/repo/src/apps/particles/particles.cpp" "src/apps/CMakeFiles/cux_apps.dir/particles/particles.cpp.o" "gcc" "src/apps/CMakeFiles/cux_apps.dir/particles/particles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ampi/CMakeFiles/cux_ampi.dir/DependInfo.cmake"
  "/root/repo/build/src/ompi/CMakeFiles/cux_ompi.dir/DependInfo.cmake"
  "/root/repo/build/src/charm4py/CMakeFiles/cux_charm4py.dir/DependInfo.cmake"
  "/root/repo/build/src/charm/CMakeFiles/cux_charm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/converse/CMakeFiles/cux_converse.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cux_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ucx/CMakeFiles/cux_ucx.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cux_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cux_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
