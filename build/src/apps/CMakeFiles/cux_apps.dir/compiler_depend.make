# Empty compiler generated dependencies file for cux_apps.
# This may be replaced when dependencies are built.
