file(REMOVE_RECURSE
  "libcux_apps.a"
)
