# Empty dependencies file for cux_sim.
# This may be replaced when dependencies are built.
