file(REMOVE_RECURSE
  "libcux_sim.a"
)
