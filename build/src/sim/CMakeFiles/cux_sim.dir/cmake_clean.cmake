file(REMOVE_RECURSE
  "CMakeFiles/cux_sim.dir/engine.cpp.o"
  "CMakeFiles/cux_sim.dir/engine.cpp.o.d"
  "CMakeFiles/cux_sim.dir/trace.cpp.o"
  "CMakeFiles/cux_sim.dir/trace.cpp.o.d"
  "libcux_sim.a"
  "libcux_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
