file(REMOVE_RECURSE
  "CMakeFiles/cux_core.dir/device_comm.cpp.o"
  "CMakeFiles/cux_core.dir/device_comm.cpp.o.d"
  "libcux_core.a"
  "libcux_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
