# Empty dependencies file for cux_core.
# This may be replaced when dependencies are built.
