file(REMOVE_RECURSE
  "libcux_core.a"
)
