file(REMOVE_RECURSE
  "libcux_charm.a"
)
