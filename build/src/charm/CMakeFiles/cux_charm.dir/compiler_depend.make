# Empty compiler generated dependencies file for cux_charm.
# This may be replaced when dependencies are built.
