file(REMOVE_RECURSE
  "CMakeFiles/cux_charm.dir/charm.cpp.o"
  "CMakeFiles/cux_charm.dir/charm.cpp.o.d"
  "libcux_charm.a"
  "libcux_charm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_charm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
