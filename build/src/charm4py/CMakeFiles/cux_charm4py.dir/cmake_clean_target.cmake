file(REMOVE_RECURSE
  "libcux_charm4py.a"
)
