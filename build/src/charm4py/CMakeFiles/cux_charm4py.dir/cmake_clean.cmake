file(REMOVE_RECURSE
  "CMakeFiles/cux_charm4py.dir/charm4py.cpp.o"
  "CMakeFiles/cux_charm4py.dir/charm4py.cpp.o.d"
  "libcux_charm4py.a"
  "libcux_charm4py.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_charm4py.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
