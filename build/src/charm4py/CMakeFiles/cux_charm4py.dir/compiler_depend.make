# Empty compiler generated dependencies file for cux_charm4py.
# This may be replaced when dependencies are built.
