# CMake generated Testfile for 
# Source directory: /root/repo/src/charm4py
# Build directory: /root/repo/build/src/charm4py
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
