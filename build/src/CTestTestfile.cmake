# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("hw")
subdirs("model")
subdirs("ucx")
subdirs("converse")
subdirs("core")
subdirs("charm")
subdirs("ampi")
subdirs("ompi")
subdirs("charm4py")
subdirs("apps")
