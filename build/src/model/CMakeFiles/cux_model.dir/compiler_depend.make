# Empty compiler generated dependencies file for cux_model.
# This may be replaced when dependencies are built.
