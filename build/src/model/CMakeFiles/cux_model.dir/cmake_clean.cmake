file(REMOVE_RECURSE
  "CMakeFiles/cux_model.dir/summit_model.cpp.o"
  "CMakeFiles/cux_model.dir/summit_model.cpp.o.d"
  "libcux_model.a"
  "libcux_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
