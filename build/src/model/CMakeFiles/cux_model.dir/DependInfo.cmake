
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/summit_model.cpp" "src/model/CMakeFiles/cux_model.dir/summit_model.cpp.o" "gcc" "src/model/CMakeFiles/cux_model.dir/summit_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/cux_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ucx/CMakeFiles/cux_ucx.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cux_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
