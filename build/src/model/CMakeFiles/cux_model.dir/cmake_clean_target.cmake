file(REMOVE_RECURSE
  "libcux_model.a"
)
