file(REMOVE_RECURSE
  "CMakeFiles/cux_ompi.dir/ompi.cpp.o"
  "CMakeFiles/cux_ompi.dir/ompi.cpp.o.d"
  "libcux_ompi.a"
  "libcux_ompi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_ompi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
