file(REMOVE_RECURSE
  "libcux_ompi.a"
)
