# Empty compiler generated dependencies file for cux_ompi.
# This may be replaced when dependencies are built.
