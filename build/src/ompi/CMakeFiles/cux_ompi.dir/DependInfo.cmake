
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ompi/ompi.cpp" "src/ompi/CMakeFiles/cux_ompi.dir/ompi.cpp.o" "gcc" "src/ompi/CMakeFiles/cux_ompi.dir/ompi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ucx/CMakeFiles/cux_ucx.dir/DependInfo.cmake"
  "/root/repo/build/src/converse/CMakeFiles/cux_converse.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cux_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cux_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cux_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
