file(REMOVE_RECURSE
  "libcux_hw.a"
)
