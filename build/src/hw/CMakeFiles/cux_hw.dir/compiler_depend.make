# Empty compiler generated dependencies file for cux_hw.
# This may be replaced when dependencies are built.
