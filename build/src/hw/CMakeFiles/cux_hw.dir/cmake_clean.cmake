file(REMOVE_RECURSE
  "CMakeFiles/cux_hw.dir/cuda.cpp.o"
  "CMakeFiles/cux_hw.dir/cuda.cpp.o.d"
  "CMakeFiles/cux_hw.dir/machine.cpp.o"
  "CMakeFiles/cux_hw.dir/machine.cpp.o.d"
  "CMakeFiles/cux_hw.dir/memory.cpp.o"
  "CMakeFiles/cux_hw.dir/memory.cpp.o.d"
  "libcux_hw.a"
  "libcux_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cux_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
